(* The hierarchical churn soak: the acceptance experiment for scaling
   membership past one flat group.

   A population of [h_endpoints] members is split into [h_subgroups]
   sub-groups of bounded size, each running
   HIER(parent,sub):<h_spec> over a grid of shared loopback sockets:
   socket [s] hosts member [s] of every sub-group (the frame header
   cannot distinguish two local members of one group, so a socket may
   carry at most one member per gid — see {!Horus.Transport_link}).
   Sub-group [j] is rotated by [j] slots, which lands its founder —
   the oldest member, hence the coordinator, hence the HIER
   representative — on slot [j mod k], so all representatives sit on
   distinct sockets and can additionally join the parent group over
   the same socket pair.

   A {!Horus_dir.Dir_service} on its own socket is the membership
   bootstrap: every member registers its (gid, eid) -> socket-address
   binding with a lease on join and unregisters on leave, via one
   shared {!Horus_dir.Dir_client} per socket riding the reserved
   directory gid ({!Horus.Transport_link.route_raw}).

   The soak then drives [h_waves] churn waves: in each, the youngest
   [h_wave_fraction] of every sub-group leaves (gracefully — so
   representatives never move), the survivors must re-converge within
   [h_converge_bound] virtual seconds, the representatives exchange a
   burst of parent-group casts, and the leavers rejoin and the full
   membership must re-converge again. At the end the run is held to:
   every wave converged, parent casts all delivered, [nak.retransmits]
   under the ceiling, and the directory's live bindings equal to the
   union of installed views — with an FNV-1a fingerprint over the
   canonical report for the CI double-run determinism gate. *)

open Horus
module Json = Horus_obs.Json
module Metrics = Horus_obs.Metrics
module T = Horus_transport
module D = Horus_dir

type config = {
  h_name : string;
  h_endpoints : int;       (* total population *)
  h_subgroups : int;       (* must be <= the sub-group size ceiling *)
  h_seed : int;
  h_spec : string;         (* sub-group stack below HIER, top first *)
  h_latency : float;       (* loopback hub latency, seconds *)
  h_join_spacing : float;  (* settle after each join *)
  h_op_gap : float;        (* gap between leaves within a wave *)
  h_settle : float;        (* settle after setup, before the waves *)
  h_waves : int;
  h_wave_fraction : float; (* youngest fraction of each sub-group churned *)
  h_casts_per_wave : int;  (* parent-group casts per wave *)
  h_lease : float;         (* directory lease, seconds *)
  h_converge_bound : float;(* per-phase view-convergence budget *)
  h_check_every : float;   (* convergence poll slice *)
  h_nak_ceiling : int;     (* whole-run nak.retransmits budget *)
}

let default_config =
  { h_name = "churn";
    h_endpoints = 1000;
    h_subgroups = 32;
    h_seed = 7;
    h_spec = "MBRSHIP:NAK:COM";
    h_latency = 0.0005;
    h_join_spacing = 0.05;
    h_op_gap = 0.02;
    h_settle = 2.0;
    h_waves = 3;
    h_wave_fraction = 0.25;
    h_casts_per_wave = 8;
    h_lease = 10.0;
    h_converge_bound = 5.0;
    h_check_every = 0.05;
    h_nak_ceiling = 100 }

let ci_config =
  { default_config with
    h_name = "churn-ci";
    h_endpoints = 256;
    h_subgroups = 8;
    h_waves = 2 }

type wave_report = {
  w_index : int;
  w_kind : string;          (* "leave" | "rejoin" *)
  w_members : int;          (* members churned in this phase *)
  w_converge : float option;(* virtual seconds to convergence *)
}

type report = {
  r_name : string;
  r_endpoints : int;
  r_subgroups : int;
  r_sockets : int;
  r_setup_converge : float option;
  r_waves : wave_report list;
  r_parent_casts : int;        (* deliveries expected per parent member *)
  r_parent_delivered : int list;(* per-representative totals *)
  r_nak_retransmits : int;
  r_unknown_gid : int;         (* in-flight frames for just-left gids *)
  r_dir_versions : (int * int) list;  (* (gid, directory version) *)
  r_dir_match : bool;
  r_dir_notifies : int;        (* seen by the one subscribed client *)
  r_dir_evictions : int;       (* graceful churn: should stay 0 *)
  r_violations : string list;
  r_elapsed : float;           (* virtual seconds *)
  r_fingerprint : int64;
}

let ok r = r.r_violations = []

let fnv s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* One member slot of one sub-group. Rejoining after a leave creates a
   fresh endpoint incarnation (new eid) on the same socket: endpoint
   ids double as age order and the NAK layer's pair lanes survive view
   changes by design, so an eid must never be reused by a later
   incarnation — exactly the rule a real deployment follows. *)
type member = {
  mutable m_eid : int;
  m_slot : int;                              (* socket index *)
  mutable m_endpoint : Endpoint.t;
  mutable m_handle : Group.t option;         (* current group handle *)
  mutable m_stop_renew : (unit -> unit) option;
}

let run c =
  if c.h_subgroups < 1 then invalid_arg "Churn: subgroups must be >= 1";
  if c.h_endpoints < 2 * c.h_subgroups then
    invalid_arg "Churn: need at least two members per sub-group";
  if c.h_wave_fraction < 0.0 || c.h_wave_fraction >= 1.0 then
    invalid_arg "Churn: wave_fraction must be in [0, 1)";
  let n = c.h_endpoints and g = c.h_subgroups in
  let sizes = Array.init g (fun j -> (n / g) + if j < n mod g then 1 else 0) in
  let k = Array.fold_left max 0 sizes in
  if g > k then
    invalid_arg
      "Churn: more sub-groups than sockets — representatives would collide";
  let world = World.create ~seed:c.h_seed () in
  let engine = World.engine world in
  let hub = T.Loopback.hub ~latency:c.h_latency engine in
  let link = Transport_link.create world in
  let peers = T.Peers.create () in
  let sockets =
    Array.init k (fun s -> T.Loopback.create ~addr:(Printf.sprintf "mem:%d" s) hub)
  in
  let sock_addr s = sockets.(s).T.Backend.local_addr in
  (* The directory fabric: the service on its own socket, one client
     per member socket, multiplexed over the reserved directory gid. *)
  let dir_backend = T.Loopback.create ~addr:"dir" hub in
  let dir = D.Dir_service.create ~max_lease:(2.0 *. c.h_lease) ~engine dir_backend in
  World.add_metrics_exporter world (fun m -> D.Dir_service.export_metrics dir m);
  let muxes = Array.map (fun b -> Transport_link.mux link ~backend:b ~peers) sockets in
  let clients =
    Array.mapi
      (fun s m ->
         let cl =
           D.Dir_client.create ~eid:(1_000_000 + s) ~engine (fun frame ->
               sockets.(s).T.Backend.send ~dest:(D.Dir_service.addr dir) frame)
         in
         Transport_link.route_raw m ~gid:D.Dir_protocol.gid (D.Dir_client.rx cl);
         cl)
      muxes
  in
  let sub_gid = Array.init g (fun _ -> World.fresh_group_addr world) in
  let parent_gid = World.fresh_group_addr world in
  let pgid = Addr.group_id parent_gid in
  (* The grid: member (j, i) starts with eid j*k + i (so the founder
     i=0 is the oldest, stable coordinator) and lives on socket
     (i + j) mod k (so founders occupy distinct slots). Later
     incarnations draw fresh, strictly higher eids from [next_eid]. *)
  let spec_of j = Printf.sprintf "HIER(parent=%d,sub=%d):%s" pgid j c.h_spec in
  let next_eid = ref (g * k) in
  let members =
    Array.init g (fun j ->
        Array.init sizes.(j) (fun i ->
            let eid = (j * k) + i and slot = (i + j) mod k in
            T.Peers.add peers ~rank:eid ~addr:(sock_addr slot);
            { m_eid = eid;
              m_slot = slot;
              m_endpoint =
                Transport_link.mux_endpoint link muxes.(slot) ~rank:eid
                  ~spec:(spec_of j);
              m_handle = None;
              m_stop_renew = None }))
  in
  let join_member ?contact j i =
    let m = members.(j).(i) in
    m.m_handle <- Some (Group.join ?contact ~record:false m.m_endpoint sub_gid.(j));
    m.m_stop_renew <-
      Some
        (D.Dir_client.auto_renew clients.(m.m_slot)
           ~group:(Addr.group_id sub_gid.(j))
           ~rank:m.m_eid ~addr:(sock_addr m.m_slot) ~lease:c.h_lease)
  in
  let leave_member j i =
    let m = members.(j).(i) in
    (match m.m_handle with Some gr -> Group.leave gr | None -> ());
    (match m.m_stop_renew with Some stop -> stop () | None -> ());
    m.m_stop_renew <- None
  in
  (* Convergence: every present member of every sub-group holds a view
     whose membership is exactly the present set, and every departing
     handle has fully exited (so its endpoint can rejoin). *)
  let eids_of v = List.sort compare (List.map Addr.endpoint_id (View.members v)) in
  let subgroup_settled j =
    let expected =
      Array.to_list members.(j)
      |> List.filter_map (fun m ->
             match (m.m_handle, m.m_stop_renew) with
             | Some _, Some _ -> Some m.m_eid
             | _ -> None)
      |> List.sort compare
    in
    Array.for_all
      (fun m ->
         match m.m_handle with
         | None -> true
         | Some gr ->
           if m.m_stop_renew = None then Group.exited gr
           else (match Group.view gr with
                 | Some v -> eids_of v = expected
                 | None -> false))
      members.(j)
  in
  let all_settled () =
    let rec go j = j >= g || (subgroup_settled j && go (j + 1)) in
    go 0
  in
  let wait_converged pred =
    let start = World.now world in
    let rec go () =
      if pred () then Some (World.now world -. start)
      else if World.now world -. start >= c.h_converge_bound then None
      else begin
        World.run_for world ~duration:c.h_check_every;
        go ()
      end
    in
    go ()
  in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let debug_dump tag =
    if Sys.getenv_opt "HORUS_CHURN_DEBUG" <> None then begin
      Printf.eprintf "--- %s (t=%.2f) ---\n" tag (World.now world);
      for j = 0 to min 1 (g - 1) do
        Array.iteri
          (fun i m ->
             match m.m_handle with
             | None -> Printf.eprintf "  g%d[%d] eid=%d: no handle\n" j i m.m_eid
             | Some gr ->
               Printf.eprintf "  g%d[%d] eid=%d live=%b exited=%b view=%s\n" j i
                 m.m_eid (m.m_stop_renew <> None) (Group.exited gr)
                 (match Group.view gr with
                  | Some v ->
                    Printf.sprintf "lt%d[%s]" (View.ltime v)
                      (String.concat ","
                         (List.map string_of_int (eids_of v)))
                  | None -> "-"))
          members.(j)
      done;
      List.iter
        (fun e ->
           let cat = e.Horus_sim.Trace.category in
           let has s =
             let ls = String.length s and lc = String.length cat in
             lc >= ls && String.sub cat (lc - ls) ls = s
           in
           if has "merge" || has "stale" || has "suspect" then
             Printf.eprintf "  [%.2f] %s: %s\n" e.Horus_sim.Trace.time
               e.Horus_sim.Trace.category e.Horus_sim.Trace.detail)
        (Horus_sim.Trace.entries (World.trace world))
    end
  in
  (* Watch the notification feed through one subscribed client. *)
  D.Dir_client.subscribe clients.(0) ~group:(Addr.group_id sub_gid.(0)) (fun _ -> ());
  (* Phase 1: found every sub-group and stagger the joins. *)
  for j = 0 to g - 1 do
    join_member j 0;
    World.run_for world ~duration:c.h_join_spacing
  done;
  for i = 1 to k - 1 do
    for j = 0 to g - 1 do
      if i < sizes.(j) then
        join_member ~contact:(Group.addr (Option.get members.(j).(0).m_handle)) j i
    done;
    World.run_for world ~duration:c.h_join_spacing
  done;
  World.run_for world ~duration:c.h_settle;
  let setup_converge = wait_converged all_settled in
  if setup_converge = None then violate "setup: sub-groups failed to converge";
  (* Phase 2: the representatives bridge into the parent group (their
     HIER layer is elect-only inside the parent gid itself). *)
  let parent_delivered = Array.make g 0 in
  let parent_handles =
    Array.init g (fun j ->
        let m = members.(j).(0) in
        let contact =
          if j = 0 then None
          else Some (Endpoint.addr members.(0).(0).m_endpoint)
        in
        let gr =
          Group.join ?contact ~record:false
            ~on_up:(fun ev ->
                match ev with
                | Horus_hcpi.Event.U_cast _ ->
                  parent_delivered.(j) <- parent_delivered.(j) + 1
                | _ -> ())
            m.m_endpoint parent_gid
        in
        (* Representatives never leave, so the stop thunk is dropped:
           the parent binding renews for the life of the run. *)
        let (_stop : unit -> unit) =
          D.Dir_client.auto_renew clients.(m.m_slot) ~group:pgid ~rank:m.m_eid
            ~addr:(sock_addr m.m_slot) ~lease:c.h_lease
        in
        World.run_for world ~duration:c.h_join_spacing;
        gr)
  in
  World.run_for world ~duration:c.h_settle;
  let parent_settled () =
    let expected =
      List.sort compare (List.init g (fun j -> members.(j).(0).m_eid))
    in
    Array.for_all
      (fun gr ->
         match Group.view gr with Some v -> eids_of v = expected | None -> false)
      parent_handles
  in
  (match wait_converged parent_settled with
   | Some _ -> ()
   | None -> violate "setup: parent group failed to converge");
  (* Phase 3: the churn waves. *)
  let waves = ref [] in
  let churn_of j = max 1 (int_of_float (c.h_wave_fraction *. float_of_int sizes.(j))) in
  let cast_seq = ref 0 in
  for w = 0 to c.h_waves - 1 do
    (* Leave wave: the youngest members of every sub-group go,
       staggered — representatives (the oldest) never move. *)
    let churned = ref 0 in
    for j = 0 to g - 1 do
      let cj = min (churn_of j) (sizes.(j) - 1) in
      for i = sizes.(j) - cj to sizes.(j) - 1 do
        leave_member j i;
        incr churned
      done;
      World.run_for world ~duration:c.h_op_gap
    done;
    let conv = wait_converged all_settled in
    if conv = None then violate "wave %d: leave phase failed to converge" w;
    waves := { w_index = w; w_kind = "leave"; w_members = !churned; w_converge = conv }
             :: !waves;
    (* Parent traffic: the representatives gossip between waves. *)
    for x = 0 to c.h_casts_per_wave - 1 do
      incr cast_seq;
      Group.cast parent_handles.(x mod g) (Printf.sprintf "w%d-%d" w !cast_seq);
      World.run_for world ~duration:0.01
    done;
    World.run_for world ~duration:0.2;
    (* Rejoin wave: the same members come back through their
       sub-group's representative, and re-register. *)
    let rejoined = ref 0 in
    for j = 0 to g - 1 do
      let cj = min (churn_of j) (sizes.(j) - 1) in
      for i = sizes.(j) - cj to sizes.(j) - 1 do
        (* The exited stack stays attached (and owns the gid route on
           its socket) until destroyed; the comeback is a NEW endpoint
           incarnation on the same socket slot. *)
        let m = members.(j).(i) in
        (match m.m_handle with Some gr -> Group.destroy gr | None -> ());
        m.m_handle <- None;
        let eid = !next_eid in
        incr next_eid;
        T.Peers.add peers ~rank:eid ~addr:(sock_addr m.m_slot);
        m.m_eid <- eid;
        m.m_endpoint <-
          Transport_link.mux_endpoint link muxes.(m.m_slot) ~rank:eid
            ~spec:(spec_of j);
        join_member ~contact:(Group.addr (Option.get members.(j).(0).m_handle)) j i;
        incr rejoined;
        World.run_for world ~duration:c.h_op_gap
      done
    done;
    let conv = wait_converged all_settled in
    if conv = None then begin
      violate "wave %d: rejoin phase failed to converge" w;
      debug_dump (Printf.sprintf "wave %d rejoin" w)
    end;
    waves := { w_index = w; w_kind = "rejoin"; w_members = !rejoined; w_converge = conv }
             :: !waves
  done;
  (* Final accounting: drain, sweep, and hold the run to its bounds. *)
  World.run_for world ~duration:c.h_settle;
  D.Dir_service.sweep_now dir;
  let expected_casts = c.h_waves * c.h_casts_per_wave in
  Array.iteri
    (fun j d ->
       if d <> expected_casts then
         violate "parent: representative %d delivered %d of %d casts" j d
           expected_casts)
    parent_delivered;
  let nak = Metrics.count (Metrics.counter (World.metrics world) "nak.retransmits") in
  if nak > c.h_nak_ceiling then
    violate "nak.retransmits %d exceeds ceiling %d" nak c.h_nak_ceiling;
  (* The directory must agree with the installed views: every
     sub-group's live bindings are exactly its final membership at its
     member's socket addresses, and the parent's are the reps. *)
  let dir_group_ok gid expected =
    let entries =
      List.map (fun (r, a, _) -> (r, a)) (D.Dir_service.entries dir ~group:gid)
    in
    let want =
      List.sort compare
        (List.map (fun (eid, slot) -> (eid, sock_addr slot)) expected)
    in
    entries = want
  in
  let dir_match = ref true in
  for j = 0 to g - 1 do
    let expected =
      Array.to_list members.(j)
      |> List.filter_map (fun m ->
             if m.m_stop_renew <> None then Some (m.m_eid, m.m_slot) else None)
    in
    if not (dir_group_ok (Addr.group_id sub_gid.(j)) expected) then begin
      dir_match := false;
      violate "directory: sub-group %d bindings diverge from its view" j
    end
  done;
  if not (dir_group_ok pgid
            (List.init g (fun j -> (members.(j).(0).m_eid, members.(j).(0).m_slot))))
  then begin
    dir_match := false;
    violate "directory: parent bindings diverge from the representative set"
  end;
  let dir_versions =
    List.map (fun gid -> (gid, D.Dir_service.version dir ~group:gid))
      (D.Dir_service.groups dir)
  in
  let dir_stats = D.Dir_service.stats dir in
  if dir_stats.D.Dir_service.s_evictions > 0 then
    violate "directory: %d lease evictions during graceful churn"
      dir_stats.D.Dir_service.s_evictions;
  let notifies =
    (D.Dir_client.stats clients.(0)).D.Dir_client.c_notifies
  in
  let core = {
    r_name = c.h_name;
    r_endpoints = n;
    r_subgroups = g;
    r_sockets = k;
    r_setup_converge = setup_converge;
    r_waves = List.rev !waves;
    r_parent_casts = expected_casts;
    r_parent_delivered = Array.to_list parent_delivered;
    r_nak_retransmits = nak;
    r_unknown_gid = Transport_link.unknown_gid link;
    r_dir_versions = dir_versions;
    r_dir_match = !dir_match;
    r_dir_notifies = notifies;
    r_dir_evictions = dir_stats.D.Dir_service.s_evictions;
    r_violations = List.rev !violations;
    r_elapsed = World.now world;
    r_fingerprint = 0L;
  } in
  core

let wave_json w =
  Json.Obj
    [ ("wave", Json.Int w.w_index);
      ("kind", Json.String w.w_kind);
      ("members", Json.Int w.w_members);
      ( "converge",
        match w.w_converge with None -> Json.Null | Some t -> Json.Float t ) ]

let core_json r =
  Json.Obj
    [ ("name", Json.String r.r_name);
      ("ok", Json.Bool (ok r));
      ("endpoints", Json.Int r.r_endpoints);
      ("subgroups", Json.Int r.r_subgroups);
      ("sockets", Json.Int r.r_sockets);
      ( "setup_converge",
        match r.r_setup_converge with None -> Json.Null | Some t -> Json.Float t );
      ("waves", Json.List (List.map wave_json r.r_waves));
      ("parent_casts", Json.Int r.r_parent_casts);
      ("parent_delivered", Json.List (List.map (fun d -> Json.Int d) r.r_parent_delivered));
      ("nak_retransmits", Json.Int r.r_nak_retransmits);
      ("unknown_gid", Json.Int r.r_unknown_gid);
      ( "dir_versions",
        Json.Obj
          (List.map (fun (gid, v) -> (string_of_int gid, Json.Int v)) r.r_dir_versions) );
      ("dir_match", Json.Bool r.r_dir_match);
      ("dir_notifies", Json.Int r.r_dir_notifies);
      ("dir_evictions", Json.Int r.r_dir_evictions);
      ("violations", Json.List (List.map (fun s -> Json.String s) r.r_violations));
      ("elapsed_virtual", Json.Float r.r_elapsed) ]

let fingerprint r = fnv (Json.to_string ~indent:false (core_json r))

let run c =
  let core = run c in
  { core with r_fingerprint = fingerprint core }

let to_json r =
  match core_json r with
  | Json.Obj fields ->
    Json.Obj
      (fields @ [ ("fingerprint", Json.String (Printf.sprintf "%016Lx" r.r_fingerprint)) ])
  | j -> j

let to_string r = Json.to_string ~indent:true (to_json r)
