(** A complete, serializable description of one group test run: stack
    spec, group size, network adversary, traffic and fault schedules,
    and optionally a dispatch schedule for the {!Horus_sim.Engine}
    chooser. Scenario + code is a deterministic function — two runs of
    the same scenario are byte-identical — which is what makes
    counterexamples shrinkable and replayable from repro files. *)

type net = {
  latency : float;
  jitter : float;
  drop : float;
  duplicate : float;
  garble : float;
  mtu : int;
}

val default_net : net

val net_config : net -> Horus_sim.Net.config

type fault =
  | Crash of int                 (** member index crashes *)
  | Leave of int                 (** member leaves gracefully *)
  | Join of int
      (** churn: the member sits out the initial join wave and joins
          (contacting member 0) at the fault time instead; member 0 —
          the founder — cannot join late *)
  | Suspect of int * int         (** [Suspect (a, b)]: a suspects b *)
  | Partition of int list list   (** isolate member-index groups *)
  | Heal

type timed_fault = {
  f_at : float;   (** seconds after traffic start *)
  f_fault : fault;
}

type op = {
  op_member : int;  (** who casts *)
  op_at : float;    (** seconds after traffic start *)
  op_pad : int;
      (** extra payload bytes past the canonical form (0 = none) —
          used to push casts over fragmentation thresholds; serialized
          as ["pad"], omitted when zero *)
}
(** Payloads are not stored: the runner derives ["o<member>-<k>"]
    (plus ['+x...] filler when [op_pad > 0]) with [k] the op's rank in
    the member's time-sorted stream, so shrinking ops never creates
    artificial gaps. *)

type sched = {
  s_horizon : float;    (** chooser window, seconds *)
  s_width : int;        (** max candidates per choice point *)
  s_from : float;       (** chooser active from traffic start + this *)
  s_choices : int list; (** decisions; exhausted tail defaults to 0 *)
  s_walk : int option;  (** past [s_choices]: random walk from this seed *)
}

val default_sched : sched

type t = {
  name : string;
  spec : string;
  n : int;
  seed : int;
  net : net;
  chaos : Horus_transport.Chaos.profile option;
      (** with a profile, the runner builds the group over a loopback
          hub wrapped in a {!Horus_transport.Chaos} controller seeded
          from [seed] instead of the simulator net; Partition/Heal
          faults become chaos-level one-way blocks *)
  links : (int * int * float) list;
      (** per-link latency overrides [(src member, dst member, secs)],
          applied at traffic start — how the Figure 2 scenario slows a
          crashed member's in-flight copies down selectively *)
  join_spacing : float;  (** settle time after each join *)
  settle : float;        (** extra settle before traffic starts *)
  ops : op list;
  faults : timed_fault list;
  run_for : float;       (** run this long after traffic start *)
  sched : sched option;
  expect_violation : bool;  (** repro files: the recorded outcome *)
}

val make :
  ?name:string -> ?seed:int -> ?net:net -> ?chaos:Horus_transport.Chaos.profile ->
  ?links:(int * int * float) list ->
  ?join_spacing:float -> ?settle:float -> ?ops:op list -> ?faults:timed_fault list ->
  ?run_for:float -> ?sched:sched -> ?expect_violation:bool ->
  spec:string -> n:int -> unit -> t

val crashed_members : t -> int list
val left_members : t -> int list

val late_members : t -> int list
(** Members with a {!Join} fault (sorted, deduplicated): they sit out
    the initial join wave. *)

val schema : string
(** ["horus-repro/1"] *)

val to_json : t -> Horus_obs.Json.t
val of_json : Horus_obs.Json.t -> (t, string) result
val to_string : t -> string
(** Indented JSON; deterministic. *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
val pp_fault : Format.formatter -> fault -> unit
