(** The shared virtual-synchrony invariant library.

    One vocabulary of per-member observations ({!obs}) and one set of
    predicates used identically by the systematic explorer
    ({!Explore}), the randomized fuzzer ([test/test_fuzz.ml]), the
    repro replayer and the unit tests. Predicates return violation
    lists instead of raising, so each caller decides what a failure
    means. *)

type obs = {
  o_member : int;       (** scenario member index *)
  o_eid : int;          (** endpoint id, as it appears in views *)
  o_crashed : bool;
  o_left : bool;
  o_exited : bool;      (** stack reported exit *)
  o_casts : (string * int) list;
      (** cast deliveries, oldest first: payload and epoch (view
          ltime) at delivery *)
  o_views : ((int * int) * int list) list;
      (** views installed, oldest first: (ltime, coordinator eid) and
          member eids *)
  o_final : (int * int list) option;  (** last view: ltime, member eids *)
}

type violation = {
  v_property : string;  (** short property name, e.g. ["virtual-synchrony"] *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val survivors : obs list -> obs list
(** Members not crashed, left, or exited. *)

val parse_payload : tag:char -> string -> (int * int) option
(** Parse ["<tag><origin>-<k>"] into [(origin, k)]. Padded payloads
    (["<tag><origin>-<k>+xxx..."], a ['+'] then ['x'] filler) parse to
    the same pair; any other trailing bytes — including a corrupted
    filler — make the payload unparseable rather than aliasing it to a
    different rank. *)

val payload : ?pad:int -> tag:char -> origin:int -> k:int -> unit -> string
(** The canonical payload for origin's k-th cast (0-based). [pad]
    appends a ['+'] and ['x'] filler so the payload is at least [pad]
    bytes past the base form — how conformance runs push casts over
    fragmentation thresholds. *)

(** {1 Predicates}

    [tag] selects which payloads belong to the checked stream;
    [sent member] is how many casts that member issued. *)

val view_agreement : obs list -> violation list
(** P15: same view id implies same membership, across all members. *)

val final_view_agreement : obs list -> violation list
(** Survivors share one final view containing all of them. *)

val per_origin_fifo : tag:char -> obs list -> violation list
(** P3/P4/P12: each member's deliveries from each origin are an
    in-order, gap-free prefix [0, 1, ..., m]. *)

val reassembly_integrity : tag:char -> sent:(int -> int) -> obs list -> violation list
(** P12 over best-effort stacks: delivery is not guaranteed, but every
    delivered payload carrying [tag] must parse back to a cast its
    origin actually issued — a torn or misordered reassembly fails the
    strict parse, a fabricated rank lands out of bounds. *)

val survivor_completeness : tag:char -> sent:(int -> int) -> obs list -> violation list
(** Every survivor delivered every cast issued by a surviving member. *)

val self_delivery : tag:char -> sent:(int -> int) -> obs list -> violation list
(** Each survivor delivered all of its own casts. *)

val virtual_synchrony : obs list -> violation list
(** P9: survivors delivered identical (payload, epoch) multisets — the
    same messages in the same views. *)

val delivery_in_view : tag:char -> obs list -> violation list
(** A delivery's epoch names a view that contains its origin. *)

val total_order : obs list -> violation list
(** P6: survivors share one delivery sequence. *)

val standard : ?total:bool -> tag:char -> sent:(int -> int) -> obs list -> violation list
(** The bundle the MBRSHIP-over-reliable-FIFO stacks promise: view
    agreement, final agreement, FIFO gap-freedom, delivery-in-view,
    self-delivery, survivor completeness and virtual synchrony;
    [total] adds {!total_order}. *)

val to_json : violation list -> Horus_obs.Json.t
