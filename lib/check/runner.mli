(** Execute a {!Scenario} in a fresh world and check the shared
    invariants. Deterministic: the same scenario always produces the
    same {!result}, down to {!to_string} bytes. *)

val tag : char
(** Payload tag for runner-issued casts (['o'], as in
    ["o<member>-<k>"]). *)

type result = {
  r_scenario : Scenario.t;
  r_obs : Invariant.obs list;         (** one per member, by index *)
  r_violations : Invariant.violation list;
  r_choice_points : int;              (** chooser decisions taken *)
  r_arities : int list;               (** arity per choice point, oldest first *)
  r_taken : int list;                 (** decision per choice point, oldest first *)
}

val run :
  ?skip_inert:bool ->
  ?fastpath:bool ->
  ?observe:(Horus.World.t -> (unit -> Invariant.obs list) -> unit) ->
  Scenario.t -> result
(** Joins [n] members (spaced by [join_spacing]), settles, then plays
    the op and fault schedules relative to the traffic origin, with
    the Engine chooser installed when [sched] is present. Violations
    are {!Invariant.standard} (plus total order iff the spec contains
    TOTAL).

    With a [chaos] section in the scenario, the group runs over the
    real-transport waist — per-member loopback backends behind one
    {!Horus_transport.Chaos} controller seeded from the scenario seed
    — instead of the simulator net; Partition/Heal faults become
    chaos-level one-way blocks and link overrides / dispatch choosers
    do not apply.

    [observe] is called once after the schedules are planted and
    before time runs, with the world and a snapshot function returning
    the members' observations as of the moment it is called — the hook
    for the soak harness's online invariant checks. *)

val failed : result -> bool

val sent_of : Scenario.t -> int -> int
(** How many casts the scenario's schedule issues from a member. *)

val outcome_json : result -> Horus_obs.Json.t
(** Observations + violations only — independent of how the dispatch
    schedule was specified. This is what {!fingerprint} hashes. *)

val to_json : result -> Horus_obs.Json.t
val to_string : result -> string
(** Indented, deterministic JSON of the whole run (scenario,
    observations, violations, chooser trace). *)

val fingerprint : result -> int64
(** FNV-1a of the canonical JSON — an outcome fingerprint. *)
