(** The Horus message object (Section 3 of the paper).

    A byte buffer with headroom at the front. Layers push headers going
    down the stack and pop them coming up, like a stack. Multi-byte
    fields are big-endian. *)

type t

exception Truncated of string
(** Raised by pops on messages shorter than the requested field —
    i.e. garbled or malformed traffic. *)

val create : ?headroom:int -> string -> t
(** [create payload] makes a message whose live bytes are [payload]. *)

val of_bytes : ?headroom:int -> Bytes.t -> t

val empty : ?headroom:int -> unit -> t

val length : t -> int
(** Number of live bytes (headers + payload). *)

val copy : t -> t

val to_string : t -> string
(** Copy of the live bytes. *)

val to_bytes : t -> Bytes.t

val push_u8 : t -> int -> unit
val pop_u8 : t -> int
val push_u16 : t -> int -> unit
val pop_u16 : t -> int
val push_u32 : t -> int -> unit
val pop_u32 : t -> int
val push_i64 : t -> int64 -> unit
val pop_i64 : t -> int64
val push_bool : t -> bool -> unit
val pop_bool : t -> bool

val push_string : t -> string -> unit
(** Length-prefixed (u16) string. *)

val pop_string : t -> string

val split_off : t -> int -> t
(** [split_off t n] removes the last [n] live bytes into a new message
    (fragmentation). *)

val take_front : t -> int -> Bytes.t
(** Remove and return the first [n] live bytes. *)

val append : t -> Bytes.t -> unit
(** Append raw bytes at the tail (reassembly). *)

val replace : t -> Bytes.t -> unit
(** Replace the live bytes wholesale (compression, encryption). *)

type pos = int * int
(** A saved read position. Pops never write into the buffer, so a
    position taken before a run of pops restores them exactly; do not
    restore across a push (pushes write before the offset). *)

val mark : t -> pos

val restore : t -> pos -> unit
(** Undo the pops performed since [mark]. *)

val to_string_at : t -> pos -> string
(** The live bytes as of a saved position, without moving the
    message. *)

val view : t -> Bytes.t * int * int
(** Aliasing (buffer, offset, length) view of the live bytes; no copy.
    Invalidated by any mutation of the message. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
