(* Segment-list messages for the fused send path (zero-copy bodies).

   An iovec-style message: a header block filled back to front (layers
   push headers exactly as they do on a Msg, without the Msg's
   reserve/blit machinery) in front of a list of body segments that
   alias their source buffers. Building one from an application Msg
   copies nothing — the single gather happens once, at the bottom of
   the stack, when the wire image is needed.

   Header blocks come from a {!Pool}; a stack of headers that outgrows
   its block spills into a private, larger buffer (the pool discards
   it on release), so pushes are total and the fused commit phase can
   never fail mid-way for lack of room.

   All multi-byte fields are big-endian, matching {!Msg}. *)

type t = {
  pool : Pool.t;
  mutable hdr : Bytes.t;         (* headers, written back to front *)
  mutable hoff : int;            (* first written byte in [hdr] *)
  mutable segs : (Bytes.t * int * int) list;  (* body, in order *)
  mutable body_len : int;
  mutable disposed : bool;
}

let of_msg pool m =
  let buf, off, len = Msg.view m in
  let hdr = Pool.acquire pool in
  { pool;
    hdr;
    hoff = Bytes.length hdr;
    segs = [ (buf, off, len) ];
    body_len = len;
    disposed = false }

let hdr_len t = Bytes.length t.hdr - t.hoff

let length t = hdr_len t + t.body_len

(* Ensure [n] bytes of room before [hoff], spilling into a private
   double-size buffer when the pooled block is full. *)
let reserve t n =
  if t.hoff < n then begin
    let old_len = Bytes.length t.hdr in
    let written = old_len - t.hoff in
    let grow = Int.max n old_len in
    let nb = Bytes.create (old_len + grow) in
    Bytes.blit t.hdr t.hoff nb (t.hoff + grow) written;
    (* The displaced block goes straight back: only full-size blocks
       are retained, so a spill never pollutes the pool. *)
    Pool.release t.pool t.hdr;
    t.hdr <- nb;
    t.hoff <- t.hoff + grow
  end

let push_u8 t v =
  reserve t 1;
  t.hoff <- t.hoff - 1;
  Bytes.set_uint8 t.hdr t.hoff (v land 0xff)

let push_u16 t v =
  reserve t 2;
  t.hoff <- t.hoff - 2;
  Bytes.set_uint16_be t.hdr t.hoff (v land 0xffff)

let push_u32 t v =
  reserve t 4;
  t.hoff <- t.hoff - 4;
  Bytes.set_int32_be t.hdr t.hoff (Int32.of_int (v land 0xffffffff))

let push_bool t v = push_u8 t (if v then 1 else 0)

(* The single gather: headers then body segments, one fresh buffer. *)
let to_wire t =
  let hlen = hdr_len t in
  let b = Bytes.create (hlen + t.body_len) in
  Bytes.blit t.hdr t.hoff b 0 hlen;
  let pos = ref hlen in
  List.iter
    (fun (src, off, len) ->
       Bytes.blit src off b !pos len;
       pos := !pos + len)
    t.segs;
  b

let contents t = Bytes.unsafe_to_string (to_wire t)

let to_msg t = Msg.of_bytes (to_wire t)

let dispose t =
  if not t.disposed then begin
    t.disposed <- true;
    Pool.release t.pool t.hdr;
    t.segs <- [];
    t.body_len <- 0
  end
