(** A small reusable pool of fixed-size byte blocks, backing the
    fast-path header blocks so steady-state casts allocate nothing
    after warmup. Hit/miss counts are plain integers (this library
    sits below the metrics registry); the stack mirrors them into
    [obs] gauges. *)

type t

val default_block : int
val default_limit : int

val create : ?block:int -> ?limit:int -> unit -> t
(** [block] is the size of every pooled block (default 64 — enough
    for the canonical stack's fused headers); [limit] caps the free
    list (default 32). *)

val block_size : t -> int

val acquire : t -> Bytes.t
(** A block of [block_size] bytes: recycled when one is free (a hit),
    freshly allocated otherwise (a miss). Contents are undefined. *)

val release : t -> Bytes.t -> unit
(** Return a block. Blocks of a foreign size, or beyond [limit]
    retained, are discarded to the GC (counted in {!discards}). *)

val hits : t -> int
val misses : t -> int
val discards : t -> int
val in_pool : t -> int
