(* A small reusable buffer pool for fast-path header blocks.

   Steady-state casts allocate one header block per message; recycling
   the blocks keeps the fused send path allocation-free after warmup.
   Blocks are fixed-size [Bytes.t]; [acquire] hands out a recycled
   block when one is free (a hit) and allocates otherwise (a miss),
   [release] returns a block up to [limit] retained blocks — beyond
   that, or for a foreign-sized block (a spilled header that outgrew
   its block), the block is discarded to the GC.

   The pool lives in [lib/msg] (below [lib/obs]), so it exposes its
   hit/miss counts as plain integers; the stack mirrors them into the
   metrics registry as gauges. *)

type t = {
  block : int;                 (* size of every pooled block *)
  limit : int;                 (* max blocks retained on the free list *)
  mutable free : Bytes.t list;
  mutable free_count : int;
  mutable hits : int;
  mutable misses : int;
  mutable discards : int;      (* releases dropped (full or wrong size) *)
}

let default_block = 64
let default_limit = 32

let create ?(block = default_block) ?(limit = default_limit) () =
  if block <= 0 then invalid_arg "Pool.create: block must be positive";
  if limit < 0 then invalid_arg "Pool.create: limit must be >= 0";
  { block; limit; free = []; free_count = 0; hits = 0; misses = 0; discards = 0 }

let block_size t = t.block

let acquire t =
  match t.free with
  | b :: rest ->
    t.free <- rest;
    t.free_count <- t.free_count - 1;
    t.hits <- t.hits + 1;
    b
  | [] ->
    t.misses <- t.misses + 1;
    Bytes.create t.block

let release t b =
  if Bytes.length b = t.block && t.free_count < t.limit then begin
    t.free <- b :: t.free;
    t.free_count <- t.free_count + 1
  end
  else t.discards <- t.discards + 1

let hits t = t.hits

let misses t = t.misses

let discards t = t.discards

let in_pool t = t.free_count
