(** Segment-list messages for the fused send path (zero-copy bodies).

    An iovec-style message: a pooled header block filled back to front
    plus a list of body segments aliasing their source buffers.
    Building one from an application {!Msg} copies nothing; the single
    gather happens once, at the bottom of the stack. Multi-byte fields
    are big-endian, matching {!Msg}. *)

type t

val of_msg : Pool.t -> Msg.t -> t
(** The message's live bytes become the (aliased, uncopied) body; a
    header block is acquired from [pool]. The view is invalidated by
    any mutation of the source message. *)

val length : t -> int
(** Headers + body, in bytes. *)

val push_u8 : t -> int -> unit
val push_u16 : t -> int -> unit
val push_u32 : t -> int -> unit
val push_bool : t -> bool -> unit
(** Pushes prepend to the headers, exactly like the corresponding
    {!Msg} pushes. A header stack that outgrows the pooled block
    spills into a private larger buffer, so pushes never fail. *)

val to_wire : t -> Bytes.t
(** Gather headers and body into one fresh buffer (the wire image). *)

val contents : t -> string
(** [to_wire] as a string. *)

val to_msg : t -> Msg.t
(** A flat {!Msg} (with default headroom) holding the gathered
    bytes. *)

val dispose : t -> unit
(** Return the header block to the pool. Idempotent; the segment must
    not be used afterwards. *)
