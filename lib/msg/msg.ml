(* The Horus message object (Section 3).

   A message is a byte buffer with headroom at the front. Layers push
   headers as the message travels down the stack and pop them as it
   travels up, like a stack. Pushing writes immediately before [off];
   popping reads at [off] and advances it. No data is copied on a
   push/pop, only on headroom growth.

   All multi-byte fields are big-endian. *)

type t = {
  mutable buf : Bytes.t;
  mutable off : int;  (* start of live bytes *)
  mutable len : int;  (* number of live bytes *)
}

let default_headroom = 64

exception Truncated of string

let create ?(headroom = default_headroom) payload =
  let plen = String.length payload in
  let buf = Bytes.create (headroom + plen) in
  Bytes.blit_string payload 0 buf headroom plen;
  { buf; off = headroom; len = plen }

let of_bytes ?(headroom = default_headroom) b =
  let blen = Bytes.length b in
  let buf = Bytes.create (headroom + blen) in
  Bytes.blit b 0 buf headroom blen;
  { buf; off = headroom; len = blen }

let empty ?headroom () = create ?headroom ""

let length t = t.len

let copy t = { buf = Bytes.copy t.buf; off = t.off; len = t.len }

let to_string t = Bytes.sub_string t.buf t.off t.len

let to_bytes t = Bytes.sub t.buf t.off t.len

(* Ensure at least [n] bytes of headroom before [off]. Doubles the
   headroom when growing so that repeated pushes amortize. *)
let reserve t n =
  if t.off < n then begin
    let need = n - t.off in
    let grow = Int.max need (Bytes.length t.buf + default_headroom) in
    let buf = Bytes.create (Bytes.length t.buf + grow) in
    Bytes.blit t.buf t.off buf (t.off + grow) t.len;
    t.buf <- buf;
    t.off <- t.off + grow
  end

let check_pop t n what = if t.len < n then raise (Truncated what)

(* --- fixed-width fields --- *)

let push_u8 t v =
  reserve t 1;
  t.off <- t.off - 1;
  t.len <- t.len + 1;
  Bytes.set_uint8 t.buf t.off (v land 0xff)

let pop_u8 t =
  check_pop t 1 "u8";
  let v = Bytes.get_uint8 t.buf t.off in
  t.off <- t.off + 1;
  t.len <- t.len - 1;
  v

let push_u16 t v =
  reserve t 2;
  t.off <- t.off - 2;
  t.len <- t.len + 2;
  Bytes.set_uint16_be t.buf t.off (v land 0xffff)

let pop_u16 t =
  check_pop t 2 "u16";
  let v = Bytes.get_uint16_be t.buf t.off in
  t.off <- t.off + 2;
  t.len <- t.len - 2;
  v

let push_u32 t v =
  reserve t 4;
  t.off <- t.off - 4;
  t.len <- t.len + 4;
  Bytes.set_int32_be t.buf t.off (Int32.of_int (v land 0xffffffff))

let pop_u32 t =
  check_pop t 4 "u32";
  let v = Int32.to_int (Bytes.get_int32_be t.buf t.off) land 0xffffffff in
  t.off <- t.off + 4;
  t.len <- t.len - 4;
  v

let push_i64 t v =
  reserve t 8;
  t.off <- t.off - 8;
  t.len <- t.len + 8;
  Bytes.set_int64_be t.buf t.off v

let pop_i64 t =
  check_pop t 8 "i64";
  let v = Bytes.get_int64_be t.buf t.off in
  t.off <- t.off + 8;
  t.len <- t.len - 8;
  v

let push_bool t v = push_u8 t (if v then 1 else 0)

let pop_bool t = pop_u8 t <> 0

(* --- variable-length fields (u16 length prefix) --- *)

let push_string t s =
  let n = String.length s in
  if n > 0xffff then invalid_arg "Msg.push_string: string too long";
  reserve t (n + 2);
  t.off <- t.off - n;
  Bytes.blit_string s 0 t.buf t.off n;
  t.len <- t.len + n;
  push_u16 t n

let pop_string t =
  let n = pop_u16 t in
  check_pop t n "string body";
  let s = Bytes.sub_string t.buf t.off n in
  t.off <- t.off + n;
  t.len <- t.len - n;
  s

(* --- splitting and joining, for fragmentation layers --- *)

(* [split_off t n] removes the last [n] bytes of [t] and returns them
   as a new message. *)
let split_off t n =
  if n < 0 || n > t.len then invalid_arg "Msg.split_off";
  let tail = Bytes.sub t.buf (t.off + t.len - n) n in
  t.len <- t.len - n;
  of_bytes tail

(* [take_front t n] removes and returns the first [n] live bytes. *)
let take_front t n =
  if n < 0 || n > t.len then invalid_arg "Msg.take_front";
  let head = Bytes.sub t.buf t.off n in
  t.off <- t.off + n;
  t.len <- t.len - n;
  head

let append t b =
  (* Append raw bytes at the tail (used by reassembly). Grows the tail
     as needed. *)
  let n = Bytes.length b in
  let cap = Bytes.length t.buf - (t.off + t.len) in
  if cap < n then begin
    let buf = Bytes.create (t.off + t.len + Int.max n (t.len + default_headroom)) in
    Bytes.blit t.buf t.off buf t.off t.len;
    t.buf <- buf
  end;
  Bytes.blit b 0 t.buf (t.off + t.len) n;
  t.len <- t.len + n

(* Replace the live bytes wholesale (used by transform layers such as
   compression and encryption); headroom is re-established. *)
let replace t b =
  let n = Bytes.length b in
  let buf = Bytes.create (default_headroom + n) in
  Bytes.blit b 0 buf default_headroom n;
  t.buf <- buf;
  t.off <- default_headroom;
  t.len <- n

(* --- positions, for speculative parsing ---

   Pops only move [off]/[len]; they never write into the buffer. A
   caller may therefore save the position, pop ahead to inspect
   headers, and restore to undo the pops exactly — the fast-path
   engine's check phase relies on this to fall back to the full stack
   without perturbing the message. Pushes DO write before [off], so a
   mark taken before a push must not be restored across it. *)

type pos = int * int

let mark t = (t.off, t.len)

let restore t (off, len) =
  if off < 0 || len < 0 || off + len > Bytes.length t.buf then
    invalid_arg "Msg.restore";
  t.off <- off;
  t.len <- len

(* The live bytes as of a saved position, without moving the message —
   how a layer snapshots "the message as I saw it" during a check
   phase whose later stages keep popping. *)
let to_string_at t (off, len) =
  if off < 0 || len < 0 || off + len > Bytes.length t.buf then
    invalid_arg "Msg.to_string_at";
  Bytes.sub_string t.buf off len

(* Aliasing read view (buffer, offset, length) of the live bytes. The
   segment-list message uses it to reference a payload without
   blitting; the view is invalidated by any mutation of [t]. *)
let view t = (t.buf, t.off, t.len)

let equal a b = to_string a = to_string b

let pp fmt t =
  let s = to_string t in
  let hex = String.concat "" (List.map (fun c -> Format.sprintf "%02x" (Char.code c)) (List.init (Int.min 16 (String.length s)) (String.get s))) in
  Format.fprintf fmt "<msg len=%d %s%s>" t.len hex (if String.length s > 16 then "..." else "")
