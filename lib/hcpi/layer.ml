(* Protocol layers as abstract data types (Sections 1 and 4).

   A layer is a constructor from an environment to an instance. The
   environment carries everything a layer may touch: its endpoint and
   group identity, emitters toward the layers above and below (which
   enqueue onto the owning endpoint's event queue — the paper's
   event-queue scheduling model), timers, a deterministic PRNG, the
   raw transport (used only by bottom adapters such as COM), and the
   rendezvous service (a resource-location service used by membership
   and merge layers to find foreign partitions). *)

open Horus_msg

(* Best-effort datagram transport under the stack ("ATM" in the
   paper's example). Only bottom adapter layers use it. *)
type transport = {
  xmit : dst:Addr.endpoint -> Bytes.t -> unit;
  local_node : int;
  mtu : int;
}

(* Resource-location service: group coordinators announce themselves so
   that merge layers can find foreign partitions. *)
type rendezvous = {
  announce : Addr.group -> Addr.endpoint -> unit;
  withdraw : Addr.group -> Addr.endpoint -> unit;
  lookup : Addr.group -> Addr.endpoint list;
}

let null_rendezvous =
  { announce = (fun _ _ -> ()); withdraw = (fun _ _ -> ()); lookup = (fun _ -> []) }

(* Stable storage that survives process crashes (a simulated disk):
   append-only logs addressed by string keys. The LOG layer uses it to
   tolerate total failures (Figure 1's "logging" type). *)
type storage = {
  append : key:string -> string -> unit;
  read : key:string -> string list;   (* records in append order *)
  truncate : key:string -> unit;
}

let null_storage =
  { append = (fun ~key:_ _ -> ()); read = (fun ~key:_ -> []); truncate = (fun ~key:_ -> ()) }

(* Fused fast path (the Section 10 remedies, taken further): a layer
   may offer the stack a compiled form of its steady-state cast
   handling. The stack strings the per-layer pieces into one closure
   pair and runs casts through them without touching the event queue.

   Discipline: the [*_ready]/[*_check] phases must be pure with
   respect to outcome-visible state (pops on the message are fine —
   the stack restores them on fallback), so that a [false] anywhere
   can fall back to the full stack and re-execute from scratch. All
   mutation belongs in the commit phases, which run only once every
   check has passed and must reproduce the full path's effects
   exactly. *)
type fastpath = {
  fp_send_ready : len:int -> bool;
      (* may this layer's send work be fused for an [len]-byte
         application payload? Pure. *)
  fp_send : Seg.t -> unit;
      (* commit: push this layer's header(s) and apply the side
         effects the full down-path would have had. *)
  fp_deliver_check : rank:int -> meta:Event.meta -> Msg.t -> bool;
      (* pop this layer's header(s) and decide whether the packet is
         the undisturbed next-in-order cast. May stash scratch for the
         commit; must not mutate outcome-visible state. *)
  fp_deliver_commit : rank:int -> meta:Event.meta -> Msg.t -> unit;
      (* apply the side effects the full up-path would have had. *)
}

(* The bottom layer (the network adapter, e.g. COM) both frames
   outgoing casts and recognises incoming ones, so it gets its own
   shape. *)
type fp_bottom = {
  fpb_send_ready : unit -> bool;
  fpb_cast : Seg.t -> (Msg.t * int * Event.meta) option;
      (* frame, gather and transmit the cast; returns the local copy
         (message, self rank, meta) when the sender is itself a
         destination, for delivery through the normal queue. *)
  fpb_parse : Msg.t -> (int * Event.meta) option;
      (* strip the envelope of an incoming packet; [Some (rank, meta)]
         when it is a well-formed cast from a current member. Pure but
         for pops. *)
  fpb_parsed : unit -> unit;
      (* commit for a fused delivery (e.g. bump the received
         counter). *)
}

type env = {
  engine : Horus_sim.Engine.t;
  endpoint : Addr.endpoint;
  group : Addr.group;
  params : Params.t;
  prng : Horus_util.Prng.t;
  transport : transport;
  rendezvous : rendezvous;
  storage : storage;
  metrics : Horus_obs.Metrics.t option;
      (* the owning world's registry, when it keeps one; layers export
         protocol-level counters (e.g. nak.retransmits) through it *)
  emit_up : Event.up -> unit;     (* toward the application *)
  emit_down : Event.down -> unit; (* toward the network *)
  set_timer : delay:float -> (unit -> unit) -> Horus_sim.Engine.handle;
  trace : category:string -> string -> unit;
  fp_register : (unit -> fastpath option) -> unit;
      (* offer a fast-path compiler; called at most once, from the
         constructor. The stack invokes the compiler lazily whenever
         the path must be (re)built; [None] means "not fusable right
         now". *)
  fp_register_bottom : (unit -> fp_bottom option) -> unit;
      (* ditto, for the bottom adapter layer. *)
  fp_invalidate : unit -> unit;
      (* tear down any compiled path; the layer must call this when it
         leaves steady state in a way no view event announces (e.g. a
         NAK repair begins, the token moves). Cheap when no path is
         compiled. *)
}

type instance = {
  name : string;
  handle_down : Event.down -> unit;
  handle_up : Event.up -> unit;
  dump : unit -> string list;     (* the dump downcall / focus handle *)
  stop : unit -> unit;            (* cancel timers etc. on destroy *)
  inert : bool;
      (* Declares that both handlers forward every event untouched, so
         the stack may bypass this layer entirely — the layer-skipping
         optimization of Section 10. Only truly inert layers (NOOP) may
         set it. *)
}

type ctor = env -> instance

(* Helper for simple filter layers: provide only the cases you care
   about; everything else passes through untouched (this pass-through
   is the mechanical form of property *inheritance*, Section 6). *)
let passthrough ~name ?(inert = false) ?(dump = fun () -> []) ?(stop = fun () -> ())
    ?(handle_down = fun env ev -> env.emit_down ev)
    ?(handle_up = fun env ev -> env.emit_up ev) env =
  { name;
    handle_down = handle_down env;
    handle_up = handle_up env;
    dump;
    stop;
    inert }

(* Periodic timer helper: calls [f] every [period] seconds until the
   returned stop function is invoked. *)
let every env ~period f =
  let stopped = ref false in
  let rec arm () =
    if not !stopped then
      ignore
        (env.set_timer ~delay:period (fun () ->
             if not !stopped then begin
               f ();
               arm ()
             end))
  in
  arm ();
  fun () -> stopped := true
