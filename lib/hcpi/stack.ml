(* Stack composition engine (Sections 3 and 4).

   A stack is an ordered array of layer instances, index 0 at the top.
   All activity — downcalls from the application, packets injected at
   the bottom, timer callbacks — is funneled through one FIFO event
   queue per stack and drained in order. This is the event-queue
   scheduling model the paper describes as the simpler alternative to
   intra-stack threading (and the one Section 10 says they are moving
   to): within a stack there is no concurrency to lock against, and
   runs are deterministic. *)

type item =
  | Down of int * Event.down   (* deliver downcall to layer [idx] *)
  | Up of int * Event.up       (* deliver upcall to layer [idx] *)
  | To_app of Event.up
  | To_below of Event.down
  | Thunk of (unit -> unit)

(* Per-layer crossing counters (Section 10's "indirect procedure call
   each time a layer boundary is crossed", made first-class data).
   Counters are registered by layer *name*, so all stacks sharing a
   registry — every member of a world — accumulate into the same
   per-layer totals. *)
type obs = {
  down_crossings : Horus_obs.Metrics.counter array;  (* hcpi.down.<LAYER> *)
  up_crossings : Horus_obs.Metrics.counter array;    (* hcpi.up.<LAYER> *)
  app_deliveries : Horus_obs.Metrics.counter;        (* hcpi.to_app *)
  below_emissions : Horus_obs.Metrics.counter;       (* hcpi.to_below *)
}

(* A compiled fast path: the participating (non-inert, non-bottom)
   layers' fused handlers in top-to-bottom order, plus the bottom
   adapter's framing pair. Recomputed lazily after any dirtying event
   (view change, explicit invalidation). *)
type fp_path = {
  fps : Layer.fastpath array;  (* top to bottom, bottom adapter excluded *)
  fpb : Layer.fp_bottom;
}

type fp_obs = {
  fp_send_fused : Horus_obs.Metrics.counter;
  fp_send_fallback : Horus_obs.Metrics.counter;
  fp_deliver_fused : Horus_obs.Metrics.counter;
  fp_deliver_fallback : Horus_obs.Metrics.counter;
  fp_compiles : Horus_obs.Metrics.counter;
  fp_invalidations : Horus_obs.Metrics.counter;
  fp_crossings : Horus_obs.Metrics.histogram;  (* layer crossings per cast *)
  fp_pool_hits : Horus_obs.Metrics.gauge;
  fp_pool_misses : Horus_obs.Metrics.gauge;
}

type t = {
  mutable layers : Layer.instance array;  (* 0 = top *)
  names : string array;
  queue : item Horus_util.Fifo.t;
  mutable running : bool;
  mutable destroyed : bool;
  mutable processed : int;
  obs : obs option;
  to_app : Event.up -> unit;
  to_below : Event.down -> unit;
  skip_inert : bool;
  (* --- fused fast path (Section 10's remedies, combined) --- *)
  fp_enabled : bool;
  fp_pool : Horus_msg.Pool.t;               (* header blocks for Seg *)
  fp_send_compilers : (unit -> Layer.fastpath option) option array;
  fp_bottom_compilers : (unit -> Layer.fp_bottom option) option array;
  mutable fp_path : fp_path option;
  mutable fp_dirty : bool;                  (* recompile before next use *)
  fp_obs : fp_obs option;
}

let default_to_below ev =
  (* An event fell off the bottom of a stack with no bottom adapter;
     that is a mis-configured stack, not a runtime condition. *)
  invalid_arg ("Stack: downcall " ^ Event.down_name ev ^ " reached the bottom unhandled")

let process t item =
  t.processed <- t.processed + 1;
  (match t.obs with
   | None -> ()
   | Some o ->
     (match item with
      | Down (i, _) -> Horus_obs.Metrics.incr o.down_crossings.(i)
      | Up (i, _) -> Horus_obs.Metrics.incr o.up_crossings.(i)
      | To_app _ -> Horus_obs.Metrics.incr o.app_deliveries
      | To_below _ -> Horus_obs.Metrics.incr o.below_emissions
      | Thunk _ -> ()));
  match item with
  | Down (i, ev) -> t.layers.(i).Layer.handle_down ev
  | Up (i, ev) -> t.layers.(i).Layer.handle_up ev
  | To_app ev ->
    (* A view reaching the application means membership settled into a
       new epoch: any compiled fast path is stale. *)
    (match ev with
     | Event.U_view _ when t.fp_enabled ->
       t.fp_path <- None;
       t.fp_dirty <- true
     | _ -> ());
    t.to_app ev
  | To_below ev -> t.to_below ev
  | Thunk f -> f ()

let drain t =
  if not t.running then begin
    t.running <- true;
    let finish () = t.running <- false in
    try
      let continue = ref true in
      while !continue do
        match Horus_util.Fifo.pop t.queue with
        | None -> continue := false
        | Some item -> process t item
      done;
      finish ()
    with e ->
      finish ();
      raise e
  end

let enqueue t item =
  if not t.destroyed then begin
    Horus_util.Fifo.push t.queue item;
    drain t
  end

(* --- the fused fast path -------------------------------------------

   When a stack is in steady state, a cast crosses every layer twice
   (down on send, up on delivery) through the event queue — the
   "indirect procedure call each time a layer boundary is crossed"
   that Section 10 identifies as the dominant cost. The fast path
   compiles the per-layer crossings into one closure pair and runs
   steady-state casts through them directly, with the message body
   carried zero-copy in a segment list.

   Safety comes from the check/commit split (see Layer.fastpath): a
   cast is fused only when every participating layer agrees, *before*
   any outcome-visible mutation, that the event is the undisturbed
   common case. Any disagreement falls back to the full stack, which
   re-executes the event from scratch — so a conservative check is
   always sound. The path is recompiled lazily after view changes and
   explicit invalidations (NAK repair, token handover, flush). *)

let fp_mark_dirty t =
  if t.fp_enabled then begin
    t.fp_path <- None;
    t.fp_dirty <- true
  end

let fp_invalidate_path t =
  if t.fp_enabled then begin
    (match t.fp_path, t.fp_obs with
     | Some _, Some o -> Horus_obs.Metrics.incr o.fp_invalidations
     | _ -> ());
    fp_mark_dirty t
  end

(* (Re)compile: every non-inert layer above the bottom must offer a
   fused form right now, and the bottom adapter must offer its framing
   pair. Inert layers are skipped outright — they forward everything
   untouched, so omitting them is outcome-equivalent whether or not
   the queue-level [skip_inert] optimization is on. A failed compile
   leaves the path empty; it is retried on the next dirtying event
   (every transition that could enable fusing involves one). *)
let fp_compile t =
  t.fp_dirty <- false;
  t.fp_path <- None;
  let bottom = Array.length t.layers - 1 in
  match t.fp_bottom_compilers.(bottom) with
  | None -> ()
  | Some compile_bottom ->
    (match compile_bottom () with
     | None -> ()
     | Some fpb ->
       let ok = ref true in
       let acc = ref [] in
       for i = bottom - 1 downto 0 do
         if !ok && not t.layers.(i).Layer.inert then
           match t.fp_send_compilers.(i) with
           | None -> ok := false
           | Some c ->
             (match c () with
              | None -> ok := false
              | Some fp -> acc := fp :: !acc)
       done;
       if !ok then begin
         t.fp_path <- Some { fps = Array.of_list !acc; fpb };
         match t.fp_obs with
         | Some o -> Horus_obs.Metrics.incr o.fp_compiles
         | None -> ()
       end)

let fp_sync_pool_gauges t =
  match t.fp_obs with
  | None -> ()
  | Some o ->
    Horus_obs.Metrics.set o.fp_pool_hits
      (float_of_int (Horus_msg.Pool.hits t.fp_pool));
    Horus_obs.Metrics.set o.fp_pool_misses
      (float_of_int (Horus_msg.Pool.misses t.fp_pool))

(* The splice precondition: fused events may only replace queue
   processing when the queue has nothing in flight — otherwise
   ordering relative to queued events would change. *)
let fp_ready t =
  t.fp_enabled && not t.destroyed && not t.running
  && Horus_util.Fifo.is_empty t.queue
  && begin
    if t.fp_dirty then fp_compile t;
    t.fp_path <> None
  end

(* Replicates the bottom layer's [emit_up]: the sender's own copy of a
   fused cast is delivered through the normal queue, exactly as the
   full path's local delivery would be. *)
let fp_emit_above_bottom t ev =
  let rec next_up i =
    if i < 0 then -1
    else if t.skip_inert && t.layers.(i).Layer.inert then next_up (i - 1)
    else i
  in
  let j = next_up (Array.length t.layers - 2) in
  enqueue t (if j < 0 then To_app ev else Up (j, ev))

let fp_try_send t m =
  fp_ready t
  && match t.fp_path with
     | None -> false
     | Some p ->
       let len = Horus_msg.Msg.length m in
       Array.for_all (fun (fp : Layer.fastpath) -> fp.Layer.fp_send_ready ~len) p.fps
       && p.fpb.Layer.fpb_send_ready ()
       && begin
         (* Commit: headers pushed top to bottom onto a segment list
            that aliases the application payload; the bottom adapter
            gathers once and transmits. *)
         let seg = Horus_msg.Seg.of_msg t.fp_pool m in
         Array.iter (fun (fp : Layer.fastpath) -> fp.Layer.fp_send seg) p.fps;
         let local = p.fpb.Layer.fpb_cast seg in
         Horus_msg.Seg.dispose seg;
         (match t.fp_obs with
          | Some o ->
            Horus_obs.Metrics.incr o.fp_send_fused;
            Horus_obs.Metrics.observe o.fp_crossings
              (float_of_int (Array.length p.fps + 1))
          | None -> ());
         fp_sync_pool_gauges t;
         (match local with
          | Some (lm, rank, meta) ->
            fp_emit_above_bottom t (Event.U_cast (rank, lm, meta))
          | None -> ());
         true
       end

let fp_try_deliver t m =
  fp_ready t
  && match t.fp_path with
     | None -> false
     | Some p ->
       let mark = Horus_msg.Msg.mark m in
       let nf = Array.length p.fps in
       (* Check phase: pops only. The bottom adapter strips the
          envelope, then each layer (bottom to top) pops its own
          headers and votes. A short or foreign packet simply falls
          back — the full stack re-parses from the restored mark. *)
       let verdict =
         try
           match p.fpb.Layer.fpb_parse m with
           | None -> None
           | Some (rank, meta) ->
             let ok = ref true in
             let i = ref (nf - 1) in
             while !ok && !i >= 0 do
               if not (p.fps.(!i).Layer.fp_deliver_check ~rank ~meta m) then
                 ok := false;
               decr i
             done;
             if !ok then Some (rank, meta) else None
         with Horus_msg.Msg.Truncated _ -> None
       in
       (match verdict with
        | None ->
          Horus_msg.Msg.restore m mark;
          false
        | Some (rank, meta) ->
          (* Commit phase, in full-path effect order: bottom first. *)
          p.fpb.Layer.fpb_parsed ();
          for j = nf - 1 downto 0 do
            p.fps.(j).Layer.fp_deliver_commit ~rank ~meta m
          done;
          (match t.fp_obs with
           | Some o ->
             Horus_obs.Metrics.incr o.fp_deliver_fused;
             Horus_obs.Metrics.observe o.fp_crossings (float_of_int (nf + 1))
           | None -> ());
          fp_sync_pool_gauges t;
          t.to_app (Event.U_cast (rank, m, meta));
          true)

let create ~engine ~endpoint ~group ~prng ~transport ~rendezvous
    ?(storage = Layer.null_storage) ?(skip_inert = false) ?(fastpath = false)
    ?metrics ~trace ~to_app ?(to_below = default_to_below) spec =
  let n = List.length spec in
  if n = 0 then invalid_arg "Stack.create: empty spec";
  let names = Array.of_list (List.map (fun (name, _, _) -> name) spec) in
  let obs =
    Option.map
      (fun m ->
         { down_crossings =
             Array.map (fun name -> Horus_obs.Metrics.counter m ("hcpi.down." ^ name)) names;
           up_crossings =
             Array.map (fun name -> Horus_obs.Metrics.counter m ("hcpi.up." ^ name)) names;
           app_deliveries = Horus_obs.Metrics.counter m "hcpi.to_app";
           below_emissions = Horus_obs.Metrics.counter m "hcpi.to_below" })
      metrics
  in
  let fp_obs =
    if not fastpath then None
    else
      Option.map
        (fun m ->
           { fp_send_fused = Horus_obs.Metrics.counter m "fastpath.send_fused";
             fp_send_fallback = Horus_obs.Metrics.counter m "fastpath.send_fallback";
             fp_deliver_fused = Horus_obs.Metrics.counter m "fastpath.deliver_fused";
             fp_deliver_fallback =
               Horus_obs.Metrics.counter m "fastpath.deliver_fallback";
             fp_compiles = Horus_obs.Metrics.counter m "fastpath.compiles";
             fp_invalidations = Horus_obs.Metrics.counter m "fastpath.invalidations";
             fp_crossings =
               Horus_obs.Metrics.histogram
                 ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32. |]
                 m "fastpath.crossings_per_cast";
             fp_pool_hits = Horus_obs.Metrics.gauge m "fastpath.pool_hits";
             fp_pool_misses = Horus_obs.Metrics.gauge m "fastpath.pool_misses" })
        metrics
  in
  let t =
    { layers = [||];
      names;
      queue = Horus_util.Fifo.create ();
      running = false;
      destroyed = false;
      processed = 0;
      obs;
      to_app;
      to_below;
      skip_inert;
      fp_enabled = fastpath;
      fp_pool = Horus_msg.Pool.create ();
      fp_send_compilers = Array.make n None;
      fp_bottom_compilers = Array.make n None;
      fp_path = None;
      fp_dirty = fastpath;  (* compile lazily, once the stack settles *)
      fp_obs }
  in
  (* Layer-skipping (Section 10, remedy 1): with [skip_inert], an
     emission bypasses any run of inert layers in its direction. The
     instances array is knot-tied, so inertness is consulted lazily at
     emission time, after construction completed. *)
  let rec next_down i =
    if i >= n then n
    else if skip_inert && t.layers.(i).Layer.inert then next_down (i + 1)
    else i
  in
  let rec next_up i =
    if i < 0 then -1
    else if skip_inert && t.layers.(i).Layer.inert then next_up (i - 1)
    else i
  in
  let make i (name, params, (ctor : Params.t -> Layer.ctor)) =
    let emit_up ev =
      let j = next_up (i - 1) in
      enqueue t (if j < 0 then To_app ev else Up (j, ev))
    in
    let emit_down ev =
      let j = next_down (i + 1) in
      enqueue t (if j >= n then To_below ev else Down (j, ev))
    in
    let set_timer ~delay f =
      Horus_sim.Engine.schedule engine ~delay (fun () ->
          if not t.destroyed then enqueue t (Thunk f))
    in
    let env =
      { Layer.engine; endpoint; group; params;
        prng = Horus_util.Prng.copy prng;
        transport; rendezvous; storage; metrics; emit_up; emit_down; set_timer;
        trace = (fun ~category detail -> trace ~layer:name ~category detail);
        fp_register = (fun c -> t.fp_send_compilers.(i) <- Some c);
        fp_register_bottom = (fun c -> t.fp_bottom_compilers.(i) <- Some c);
        fp_invalidate = (fun () -> fp_invalidate_path t) }
    in
    ctor params env
  in
  t.layers <- Array.of_list (List.mapi make spec);
  t

let depth t = Array.length t.layers

let processed t = t.processed

let layer_names t = Array.to_list t.names

(* Application-level downcall: enters at the top. (The top entry is
   not skipped even when inert: entry points stay stable for focus and
   accounting; only inter-layer hops are optimized.) Casts try the
   fused path first; everything else — and any cast the path declines
   — takes the full queue, with views dirtying the compiled path on
   the way in. *)
let down t ev =
  (match ev with Event.D_view _ -> fp_mark_dirty t | _ -> ());
  let fused = match ev with Event.D_cast m -> fp_try_send t m | _ -> false in
  if not fused then begin
    (match ev, t.fp_obs with
     | Event.D_cast _, Some o ->
       Horus_obs.Metrics.incr o.fp_send_fallback;
       Horus_obs.Metrics.observe o.fp_crossings
         (float_of_int (Array.length t.layers))
     | _ -> ());
    enqueue t (Down (0, ev))
  end

(* Network ingress: enters at the bottom layer as an upcall; packets
   try the fused delivery path first. *)
let inject_up t ev =
  let fused =
    match ev with Event.U_packet (_, m) -> fp_try_deliver t m | _ -> false
  in
  if not fused then begin
    (match ev, t.fp_obs with
     | Event.U_packet _, Some o ->
       Horus_obs.Metrics.incr o.fp_deliver_fallback;
       Horus_obs.Metrics.observe o.fp_crossings
         (float_of_int (Array.length t.layers))
     | _ -> ());
    enqueue t (Up (Array.length t.layers - 1, ev))
  end

(* Run a thunk under the stack's event-queue discipline. *)
let post t f = enqueue t (Thunk f)

(* The focus downcall of Table 1: obtain a handle on one layer. *)
let focus t name =
  let rec loop i =
    if i >= Array.length t.names then None
    else if t.names.(i) = name then Some t.layers.(i)
    else loop (i + 1)
  in
  loop 0

let dump t =
  Array.to_list t.layers
  |> List.concat_map (fun (l : Layer.instance) ->
      List.map (fun line -> l.Layer.name ^ ": " ^ line) (l.Layer.dump ()))

let destroyed t = t.destroyed

(* Crash semantics: stop everything without notifying the application —
   a crashed process does not observe its own crash. *)
let kill t =
  if not t.destroyed then begin
    Array.iter (fun (l : Layer.instance) -> l.Layer.stop ()) t.layers;
    t.destroyed <- true;
    Horus_util.Fifo.clear t.queue
  end

let destroy t =
  if not t.destroyed then begin
    Array.iter (fun (l : Layer.instance) -> l.Layer.stop ()) t.layers;
    t.to_app Event.U_destroy;
    t.destroyed <- true;
    Horus_util.Fifo.clear t.queue
  end
