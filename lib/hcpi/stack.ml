(* Stack composition engine (Sections 3 and 4).

   A stack is an ordered array of layer instances, index 0 at the top.
   All activity — downcalls from the application, packets injected at
   the bottom, timer callbacks — is funneled through one FIFO event
   queue per stack and drained in order. This is the event-queue
   scheduling model the paper describes as the simpler alternative to
   intra-stack threading (and the one Section 10 says they are moving
   to): within a stack there is no concurrency to lock against, and
   runs are deterministic. *)

type item =
  | Down of int * Event.down   (* deliver downcall to layer [idx] *)
  | Up of int * Event.up       (* deliver upcall to layer [idx] *)
  | To_app of Event.up
  | To_below of Event.down
  | Thunk of (unit -> unit)

(* Per-layer crossing counters (Section 10's "indirect procedure call
   each time a layer boundary is crossed", made first-class data).
   Counters are registered by layer *name*, so all stacks sharing a
   registry — every member of a world — accumulate into the same
   per-layer totals. *)
type obs = {
  down_crossings : Horus_obs.Metrics.counter array;  (* hcpi.down.<LAYER> *)
  up_crossings : Horus_obs.Metrics.counter array;    (* hcpi.up.<LAYER> *)
  app_deliveries : Horus_obs.Metrics.counter;        (* hcpi.to_app *)
  below_emissions : Horus_obs.Metrics.counter;       (* hcpi.to_below *)
}

type t = {
  mutable layers : Layer.instance array;  (* 0 = top *)
  names : string array;
  queue : item Horus_util.Fifo.t;
  mutable running : bool;
  mutable destroyed : bool;
  mutable processed : int;
  obs : obs option;
  to_app : Event.up -> unit;
  to_below : Event.down -> unit;
}

let default_to_below ev =
  (* An event fell off the bottom of a stack with no bottom adapter;
     that is a mis-configured stack, not a runtime condition. *)
  invalid_arg ("Stack: downcall " ^ Event.down_name ev ^ " reached the bottom unhandled")

let process t item =
  t.processed <- t.processed + 1;
  (match t.obs with
   | None -> ()
   | Some o ->
     (match item with
      | Down (i, _) -> Horus_obs.Metrics.incr o.down_crossings.(i)
      | Up (i, _) -> Horus_obs.Metrics.incr o.up_crossings.(i)
      | To_app _ -> Horus_obs.Metrics.incr o.app_deliveries
      | To_below _ -> Horus_obs.Metrics.incr o.below_emissions
      | Thunk _ -> ()));
  match item with
  | Down (i, ev) -> t.layers.(i).Layer.handle_down ev
  | Up (i, ev) -> t.layers.(i).Layer.handle_up ev
  | To_app ev -> t.to_app ev
  | To_below ev -> t.to_below ev
  | Thunk f -> f ()

let drain t =
  if not t.running then begin
    t.running <- true;
    let finish () = t.running <- false in
    try
      let continue = ref true in
      while !continue do
        match Horus_util.Fifo.pop t.queue with
        | None -> continue := false
        | Some item -> process t item
      done;
      finish ()
    with e ->
      finish ();
      raise e
  end

let enqueue t item =
  if not t.destroyed then begin
    Horus_util.Fifo.push t.queue item;
    drain t
  end

let create ~engine ~endpoint ~group ~prng ~transport ~rendezvous
    ?(storage = Layer.null_storage) ?(skip_inert = false) ?metrics ~trace ~to_app
    ?(to_below = default_to_below) spec =
  let n = List.length spec in
  if n = 0 then invalid_arg "Stack.create: empty spec";
  let names = Array.of_list (List.map (fun (name, _, _) -> name) spec) in
  let obs =
    Option.map
      (fun m ->
         { down_crossings =
             Array.map (fun name -> Horus_obs.Metrics.counter m ("hcpi.down." ^ name)) names;
           up_crossings =
             Array.map (fun name -> Horus_obs.Metrics.counter m ("hcpi.up." ^ name)) names;
           app_deliveries = Horus_obs.Metrics.counter m "hcpi.to_app";
           below_emissions = Horus_obs.Metrics.counter m "hcpi.to_below" })
      metrics
  in
  let t =
    { layers = [||];
      names;
      queue = Horus_util.Fifo.create ();
      running = false;
      destroyed = false;
      processed = 0;
      obs;
      to_app;
      to_below }
  in
  (* Layer-skipping (Section 10, remedy 1): with [skip_inert], an
     emission bypasses any run of inert layers in its direction. The
     instances array is knot-tied, so inertness is consulted lazily at
     emission time, after construction completed. *)
  let rec next_down i =
    if i >= n then n
    else if skip_inert && t.layers.(i).Layer.inert then next_down (i + 1)
    else i
  in
  let rec next_up i =
    if i < 0 then -1
    else if skip_inert && t.layers.(i).Layer.inert then next_up (i - 1)
    else i
  in
  let make i (name, params, (ctor : Params.t -> Layer.ctor)) =
    let emit_up ev =
      let j = next_up (i - 1) in
      enqueue t (if j < 0 then To_app ev else Up (j, ev))
    in
    let emit_down ev =
      let j = next_down (i + 1) in
      enqueue t (if j >= n then To_below ev else Down (j, ev))
    in
    let set_timer ~delay f =
      Horus_sim.Engine.schedule engine ~delay (fun () ->
          if not t.destroyed then enqueue t (Thunk f))
    in
    let env =
      { Layer.engine; endpoint; group; params;
        prng = Horus_util.Prng.copy prng;
        transport; rendezvous; storage; metrics; emit_up; emit_down; set_timer;
        trace = (fun ~category detail -> trace ~layer:name ~category detail) }
    in
    ctor params env
  in
  t.layers <- Array.of_list (List.mapi make spec);
  t

let depth t = Array.length t.layers

let processed t = t.processed

let layer_names t = Array.to_list t.names

(* Application-level downcall: enters at the top. (The top entry is
   not skipped even when inert: entry points stay stable for focus and
   accounting; only inter-layer hops are optimized.) *)
let down t ev = enqueue t (Down (0, ev))

(* Network ingress: enters at the bottom layer as an upcall. *)
let inject_up t ev = enqueue t (Up (Array.length t.layers - 1, ev))

(* Run a thunk under the stack's event-queue discipline. *)
let post t f = enqueue t (Thunk f)

(* The focus downcall of Table 1: obtain a handle on one layer. *)
let focus t name =
  let rec loop i =
    if i >= Array.length t.names then None
    else if t.names.(i) = name then Some t.layers.(i)
    else loop (i + 1)
  in
  loop 0

let dump t =
  Array.to_list t.layers
  |> List.concat_map (fun (l : Layer.instance) ->
      List.map (fun line -> l.Layer.name ^ ": " ^ line) (l.Layer.dump ()))

let destroyed t = t.destroyed

(* Crash semantics: stop everything without notifying the application —
   a crashed process does not observe its own crash. *)
let kill t =
  if not t.destroyed then begin
    Array.iter (fun (l : Layer.instance) -> l.Layer.stop ()) t.layers;
    t.destroyed <- true;
    Horus_util.Fifo.clear t.queue
  end

let destroy t =
  if not t.destroyed then begin
    Array.iter (fun (l : Layer.instance) -> l.Layer.stop ()) t.layers;
    t.to_app Event.U_destroy;
    t.destroyed <- true;
    Horus_util.Fifo.clear t.queue
  end
