(** Stack composition engine: an ordered array of layer instances
    (index 0 on top) driven by one FIFO event queue per stack — the
    paper's event-queue scheduling model. Deterministic; no intra-stack
    concurrency. *)

open Horus_msg

type t

val create :
  engine:Horus_sim.Engine.t ->
  endpoint:Addr.endpoint ->
  group:Addr.group ->
  prng:Horus_util.Prng.t ->
  transport:Layer.transport ->
  rendezvous:Layer.rendezvous ->
  ?storage:Layer.storage ->
  ?skip_inert:bool ->
  ?fastpath:bool ->
  ?metrics:Horus_obs.Metrics.t ->
  trace:(layer:string -> category:string -> string -> unit) ->
  to_app:(Event.up -> unit) ->
  ?to_below:(Event.down -> unit) ->
  (string * Params.t * (Params.t -> Layer.ctor)) list ->
  t
(** [create ... spec] instantiates the layers of [spec] (top first).
    [to_app] receives upcalls leaving the top; [to_below] receives
    downcalls leaving the bottom (defaults to raising — a stack should
    end in a bottom adapter such as COM). With [metrics], every HCPI
    crossing increments an [hcpi.down.<LAYER>] / [hcpi.up.<LAYER>]
    counter (plus [hcpi.to_app] / [hcpi.to_below] for events leaving
    the stack); counters are keyed by layer name, so all stacks over
    one registry accumulate into the same per-layer totals.

    With [fastpath], steady-state casts are fused: when the queue is
    idle and every participating layer has compiled a fused form (see
    {!Layer.fastpath}), a cast crosses the stack as one direct
    closure-pair call with its body carried zero-copy, falling back to
    the full queue on any disagreement. Fused traffic reports under
    [fastpath.*] metrics instead of the per-crossing [hcpi.*]
    counters. *)

val depth : t -> int

val processed : t -> int
(** Total queue items processed (events executed) — used by the
    layering-overhead benchmarks. *)

val layer_names : t -> string list

val down : t -> Event.down -> unit
(** Application-level downcall; enters at the top. *)

val inject_up : t -> Event.up -> unit
(** Network ingress; enters at the bottom layer. *)

val post : t -> (unit -> unit) -> unit
(** Run a thunk under the stack's event-queue discipline. *)

val focus : t -> string -> Layer.instance option
(** Table 1's focus downcall: a handle on the first layer with the
    given name. *)

val dump : t -> string list
(** Table 1's dump downcall, over all layers. *)

val destroyed : t -> bool

val destroy : t -> unit
(** Stop all layers and deliver U_destroy to the application. *)

val kill : t -> unit
(** Crash semantics: stop all layers without notifying the application
    — a crashed process does not observe its own crash. *)
