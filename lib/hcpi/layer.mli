(** Protocol layers as abstract data types.

    A layer is a constructor from an environment to an instance; the
    environment's emitters enqueue onto the owning endpoint's event
    queue (the paper's event-queue scheduling model). *)

open Horus_msg

type transport = {
  xmit : dst:Addr.endpoint -> Bytes.t -> unit;
  local_node : int;
  mtu : int;
}
(** Best-effort datagram transport under the stack; used only by
    bottom adapter layers such as COM. *)

type rendezvous = {
  announce : Addr.group -> Addr.endpoint -> unit;
  withdraw : Addr.group -> Addr.endpoint -> unit;
  lookup : Addr.group -> Addr.endpoint list;
}
(** Resource-location service used by membership/merge layers to find
    foreign partitions of the same group. *)

val null_rendezvous : rendezvous

type storage = {
  append : key:string -> string -> unit;
  read : key:string -> string list;
  truncate : key:string -> unit;
}
(** Stable storage that survives process crashes (a simulated disk);
    append-only logs addressed by string keys. *)

val null_storage : storage

type fastpath = {
  fp_send_ready : len:int -> bool;
  fp_send : Seg.t -> unit;
  fp_deliver_check : rank:int -> meta:Event.meta -> Msg.t -> bool;
  fp_deliver_commit : rank:int -> meta:Event.meta -> Msg.t -> unit;
}
(** One layer's compiled steady-state cast handling. Ready/check
    phases must be pure apart from pops on the message (restored on
    fallback); all mutation belongs in the commit phases, which must
    reproduce the full path's effects exactly. *)

type fp_bottom = {
  fpb_send_ready : unit -> bool;
  fpb_cast : Seg.t -> (Msg.t * int * Event.meta) option;
  fpb_parse : Msg.t -> (int * Event.meta) option;
  fpb_parsed : unit -> unit;
}
(** The bottom adapter's compiled form: frame-and-transmit on the way
    down ([fpb_cast] returns the local copy when the sender is a
    destination), envelope recognition on the way up. *)

type env = {
  engine : Horus_sim.Engine.t;
  endpoint : Addr.endpoint;
  group : Addr.group;
  params : Params.t;
  prng : Horus_util.Prng.t;
  transport : transport;
  rendezvous : rendezvous;
  storage : storage;
  metrics : Horus_obs.Metrics.t option;
      (** the owning world's registry, for protocol-level counters *)
  emit_up : Event.up -> unit;
  emit_down : Event.down -> unit;
  set_timer : delay:float -> (unit -> unit) -> Horus_sim.Engine.handle;
  trace : category:string -> string -> unit;
  fp_register : (unit -> fastpath option) -> unit;
      (** offer a fast-path compiler (from the constructor, at most
          once); invoked lazily whenever the path is (re)built *)
  fp_register_bottom : (unit -> fp_bottom option) -> unit;
  fp_invalidate : unit -> unit;
      (** tear down any compiled path — for steady-state exits no view
          event announces (NAK repair, token handover, flush) *)
}

type instance = {
  name : string;
  handle_down : Event.down -> unit;
  handle_up : Event.up -> unit;
  dump : unit -> string list;
  stop : unit -> unit;
  inert : bool;
      (** both handlers forward everything untouched; the stack may
          bypass the layer (Section 10's layer-skipping remedy) *)
}

type ctor = env -> instance

val passthrough :
  name:string ->
  ?inert:bool ->
  ?dump:(unit -> string list) ->
  ?stop:(unit -> unit) ->
  ?handle_down:(env -> Event.down -> unit) ->
  ?handle_up:(env -> Event.up -> unit) ->
  env -> instance
(** Build an instance whose unhandled events pass through — the
    mechanical form of property inheritance. *)

val every : env -> period:float -> (unit -> unit) -> unit -> unit
(** [every env ~period f] runs [f] periodically; the returned thunk
    stops it. *)
