(** UDP datagram backend: one non-blocking IPv4 socket per backend,
    addresses as ["host:port"] dotted-quad strings. Sends never block
    and never raise into the stack (failures become stats); {!val-create}
    exposes the socket's fd so a {!Driver} can select on it. *)

val parse_addr : string -> (Unix.sockaddr, string) result
(** Parse ["host:port"] (dotted quad, no name resolution). *)

val max_datagram : int
(** Practical ceiling for a UDP payload over IPv4 (65507 bytes). *)

val create : ?mtu:int -> bind:string -> unit -> Backend.t
(** [create ~bind ()] binds a non-blocking datagram socket on [bind]
    (["host:port"]; port [0] picks an ephemeral port, reflected in the
    returned [local_addr]). Raises [Invalid_argument] on a malformed
    address and [Unix.Unix_error] when the bind itself fails. *)
