(* UDP datagram backend: the real-network half of the narrow waist.

   One non-blocking IPv4 datagram socket per backend. Addresses are
   "host:port" strings (dotted quads; name resolution is out of scope
   for a waist this narrow). Sends are fire-and-forget: full socket
   buffers and ICMP-reported errors count as send_errors/drops, never
   block, and never raise into the protocol stack — UDP promises P1
   and the layers above repair the rest.

   The file descriptor is exposed so a Driver can select on many
   backends at once; poll drains every datagram the kernel has ready
   and hands each to the rx callback with the sender's address. *)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "UDP address %S: expected HOST:PORT" s)
  | Some i ->
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port_s with
     | None -> Error (Printf.sprintf "UDP address %S: bad port %S" s port_s)
     | Some port when port < 0 || port > 0xffff ->
       Error (Printf.sprintf "UDP address %S: port out of range" s)
     | Some port ->
       (match Unix.inet_addr_of_string host with
        | addr -> Ok (Unix.ADDR_INET (addr, port))
        | exception _ ->
          Error (Printf.sprintf "UDP address %S: bad host %S (use a dotted quad)" s host)))

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

(* Practical ceiling for a UDP payload over IPv4 (65535 - 20 IP - 8 UDP). *)
let max_datagram = 65_507

let create ?(mtu = max_datagram) ~bind () =
  let sockaddr =
    match parse_addr bind with
    | Ok a -> a
    | Error e -> invalid_arg ("Udp.create: " ^ e)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (match
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sockaddr;
     Unix.set_nonblock fd
   with
   | () -> ()
   | exception e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let local_addr = string_of_sockaddr (Unix.getsockname fd) in
  let stats = Backend.fresh_stats () in
  let rx = ref None in
  let closed = ref false in
  (* Destination parses are cached: the peer set of a deployment is
     small and stable, the send path is hot. *)
  let dests = Hashtbl.create 8 in
  let resolve dest =
    match Hashtbl.find_opt dests dest with
    | Some r -> r
    | None ->
      let r = match parse_addr dest with Ok a -> Some a | Error _ -> None in
      Hashtbl.replace dests dest r;
      r
  in
  let send ~dest payload =
    if not !closed then begin
      stats.Backend.sent <- stats.Backend.sent + 1;
      stats.Backend.bytes_sent <- stats.Backend.bytes_sent + Bytes.length payload;
      match resolve dest with
      | None -> stats.Backend.dropped <- stats.Backend.dropped + 1
      | Some to_ ->
        (match Unix.sendto fd payload 0 (Bytes.length payload) [] to_ with
         | _ -> ()
         | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN), _, _) ->
           stats.Backend.dropped <- stats.Backend.dropped + 1
         | exception Unix.Unix_error (_, _, _) ->
           stats.Backend.send_errors <- stats.Backend.send_errors + 1)
    end
  in
  let buf = Bytes.create 65_536 in
  let poll () =
    (* No rx callback yet: leave datagrams in the kernel buffer rather
       than reading and discarding them, so frames that arrive before
       the stack attaches survive until it does. *)
    if !closed || !rx = None then 0
    else begin
      let drained = ref 0 in
      let continue = ref true in
      while !continue do
        match Unix.recvfrom fd buf 0 (Bytes.length buf) [] with
        | n, from ->
          stats.Backend.bytes_received <- stats.Backend.bytes_received + n;
          (match !rx with
           | Some f ->
             stats.Backend.delivered <- stats.Backend.delivered + 1;
             f ~src:(string_of_sockaddr from) (Bytes.sub buf 0 n)
           | None ->
             (* Unreachable: poll returns early without an rx. *)
             stats.Backend.dropped <- stats.Backend.dropped + 1);
          incr drained
        | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN | EINTR), _, _) ->
          continue := false
        | exception Unix.Unix_error (ECONNREFUSED, _, _) ->
          (* Linux reports a previous send's ICMP failure on receive;
             charge it to the sender and keep draining. *)
          stats.Backend.send_errors <- stats.Backend.send_errors + 1
      done;
      !drained
    end
  in
  { Backend.kind = "udp";
    local_addr;
    mtu;
    send;
    set_rx = (fun f -> rx := Some f);
    fd = Some fd;
    poll;
    close =
      (fun () ->
         if not !closed then begin
           closed := true;
           try Unix.close fd with _ -> ()
         end);
    stats }
