(** Address book: endpoint ranks to backend addresses, one entry per
    deployment member, shared (as text) by every process so all agree
    who is who. Textual form: ["0=127.0.0.1:7001,1=127.0.0.1:7002"]. *)

type t

val create : unit -> t

val add : t -> rank:int -> addr:string -> unit
(** Replaces any existing entry for [rank]. Raises [Invalid_argument]
    on a negative rank. *)

val remove : t -> rank:int -> unit

val find : t -> rank:int -> string option
(** [None] for unknown or {!block}ed ranks. *)

val block : t -> rank:int -> unit
(** Permanently fail resolution for [rank] while keeping its entry —
    the crash model: senders drop frames for a dead peer at the waist
    instead of delivering them to a socket that no longer hosts it. *)

val unblock : t -> rank:int -> unit

val is_blocked : t -> rank:int -> bool

val rank_of : t -> addr:string -> int option

val size : t -> int

val ranks : t -> int list
(** Sorted ascending. *)

val to_list : t -> (int * string) list
(** Sorted by rank. *)

val of_list : (int * string) list -> t

val parse : string -> (t, string) result
(** Parse ["0=ADDR,1=ADDR,..."]; rejects duplicates, bad ranks and
    empty books. *)

val to_string : t -> string
(** Inverse of {!parse} (canonical, rank-sorted). *)
