(* In-process loopback backend: datagrams between backends on one hub,
   delivered through the owning event engine.

   The deterministic half of the narrow waist. Delivery is an engine
   event scheduled [latency] after the send (default 0), so a world
   whose endpoints sit on a loopback hub behaves exactly like the
   simulator from the stack's point of view — same virtual time, same
   FIFO tie-breaking, byte-identical reruns — while exercising the
   real transport path (frame codec, address book, backend stats)
   instead of the simulator's typed hand-off. Under a wall-clock
   Driver the same hub runs in real time, because the driver pumps the
   same engine.

   Unknown destinations and closed receivers count as drops, mirroring
   what a kernel does to a datagram nobody listens for. A bound
   backend whose rx callback is not yet installed behaves like a bound
   socket nobody has read from yet: arrivals are buffered (up to
   [pending_limit], the analogue of SO_RCVBUF) and flushed to the
   callback the moment it attaches, so the attach-after-send race
   cannot silently eat early frames. *)

type entry = {
  mutable e_rx : Backend.rx option;
  mutable e_closed : bool;
  e_pending : (string * Bytes.t) Queue.t;  (* arrivals before set_rx *)
  e_stats : Backend.stats;
}

(* Arrivals held for a not-yet-attached receiver; beyond this they are
   dropped oldest-first, like a full kernel receive buffer. *)
let pending_limit = Defaults.pending_limit

type hub = {
  engine : Horus_sim.Engine.t;
  latency : float;
  entries : (string, entry) Hashtbl.t;
  mutable next_auto : int;
}

let hub ?(latency = 0.0) engine =
  if latency < 0.0 then invalid_arg "Loopback.hub: negative latency";
  { engine; latency; entries = Hashtbl.create 8; next_auto = 0 }

let hand_to_rx e rx ~src payload =
  e.e_stats.Backend.delivered <- e.e_stats.Backend.delivered + 1;
  e.e_stats.Backend.bytes_received <-
    e.e_stats.Backend.bytes_received + Bytes.length payload;
  rx ~src payload

let deliver hub ~src ~dest payload =
  match Hashtbl.find_opt hub.entries dest with
  | Some e when not e.e_closed ->
    (match e.e_rx with
     | Some rx -> hand_to_rx e rx ~src payload
     | None ->
       Queue.push (src, payload) e.e_pending;
       if Queue.length e.e_pending > pending_limit then begin
         ignore (Queue.pop e.e_pending);
         e.e_stats.Backend.dropped <- e.e_stats.Backend.dropped + 1
       end)
  | Some _ | None -> ()

let create ?addr hub =
  let addr =
    match addr with
    | Some a -> a
    | None ->
      (* Skip over caller-chosen addresses in the same namespace. *)
      let rec fresh () =
        let a = Printf.sprintf "mem:%d" hub.next_auto in
        hub.next_auto <- hub.next_auto + 1;
        if Hashtbl.mem hub.entries a then fresh () else a
      in
      fresh ()
  in
  if Hashtbl.mem hub.entries addr then
    invalid_arg ("Loopback.create: address already bound: " ^ addr);
  let entry =
    { e_rx = None; e_closed = false; e_pending = Queue.create ();
      e_stats = Backend.fresh_stats () }
  in
  Hashtbl.replace hub.entries addr entry;
  let send ~dest payload =
    if not entry.e_closed then begin
      entry.e_stats.Backend.sent <- entry.e_stats.Backend.sent + 1;
      entry.e_stats.Backend.bytes_sent <-
        entry.e_stats.Backend.bytes_sent + Bytes.length payload;
      if Hashtbl.mem hub.entries dest then
        (* Copy at the send: the wire owns its bytes, as with a real
           socket, so later sender-side mutation cannot reach across. *)
        let payload = Bytes.copy payload in
        ignore
          (Horus_sim.Engine.schedule hub.engine ~delay:hub.latency (fun () ->
               deliver hub ~src:addr ~dest payload))
      else entry.e_stats.Backend.dropped <- entry.e_stats.Backend.dropped + 1
    end
  in
  { Backend.kind = "loopback";
    local_addr = addr;
    mtu = 65_507;  (* match UDP's datagram ceiling so tests see real limits *)
    send;
    set_rx =
      (fun rx ->
         entry.e_rx <- Some rx;
         (* Flush what arrived before the callback existed, in order. *)
         while not (Queue.is_empty entry.e_pending) do
           let src, payload = Queue.pop entry.e_pending in
           hand_to_rx entry rx ~src payload
         done);
    fd = None;
    poll = (fun () -> 0);  (* deliveries ride the engine, nothing to drain *)
    close = (fun () -> entry.e_closed <- true);
    stats = entry.e_stats }
