(* Address book: endpoint ranks to backend addresses.

   A real deployment names its members twice — the protocol stack
   speaks endpoint ids (ranks), the backend speaks its own address
   scheme (host:port for UDP, mem:N for loopback). The Peers book is
   the mapping between the two, one entry per member, shared by every
   process of a deployment so that all of them agree who is who.

   The textual form, "0=127.0.0.1:7001,1=127.0.0.1:7002", is what
   horus_info's node subcommand takes on the command line. *)

type t = {
  by_rank : (int, string) Hashtbl.t;
  by_addr : (string, int) Hashtbl.t;
  blocked : (int, unit) Hashtbl.t;
}

let create () =
  { by_rank = Hashtbl.create 8; by_addr = Hashtbl.create 8; blocked = Hashtbl.create 8 }

let add t ~rank ~addr =
  if rank < 0 then invalid_arg "Peers.add: negative rank";
  (match Hashtbl.find_opt t.by_rank rank with
   | Some old -> Hashtbl.remove t.by_addr old
   | None -> ());
  Hashtbl.replace t.by_rank rank addr;
  Hashtbl.replace t.by_addr addr rank

let remove t ~rank =
  match Hashtbl.find_opt t.by_rank rank with
  | Some addr ->
    Hashtbl.remove t.by_rank rank;
    Hashtbl.remove t.by_addr addr
  | None -> ()

(* A crash is modelled as a PERMANENT rank block at the waist: the
   book keeps the entry (the address is still part of the deployment
   record) but resolution fails, so every sender's a_xmit drops the
   frame on the spot and counts it — dead peers cost a send-side drop,
   not an in-flight mystery at the far socket. Blocks are never lifted
   implicitly: a crashed incarnation's eid is never reused, so a
   comeback always resolves under a fresh rank. *)
let block t ~rank = Hashtbl.replace t.blocked rank ()

let unblock t ~rank = Hashtbl.remove t.blocked rank

let is_blocked t ~rank = Hashtbl.mem t.blocked rank

let find t ~rank =
  if Hashtbl.mem t.blocked rank then None else Hashtbl.find_opt t.by_rank rank

let rank_of t ~addr = Hashtbl.find_opt t.by_addr addr

let size t = Hashtbl.length t.by_rank

let ranks t =
  Hashtbl.fold (fun rank _ acc -> rank :: acc) t.by_rank []
  |> List.sort Int.compare

let to_list t = List.map (fun r -> (r, Hashtbl.find t.by_rank r)) (ranks t)

let of_list entries =
  let t = create () in
  List.iter (fun (rank, addr) -> add t ~rank ~addr) entries;
  t

let to_string t =
  String.concat ","
    (List.map (fun (r, a) -> Printf.sprintf "%d=%s" r a) (to_list t))

let parse s =
  let entries = String.split_on_char ',' s in
  let t = create () in
  let rec loop = function
    | [] -> if size t = 0 then Error "empty peer list" else Ok t
    | e :: rest ->
      let e = String.trim e in
      if e = "" then loop rest
      else
        (match String.index_opt e '=' with
         | None -> Error (Printf.sprintf "peer entry %S: expected RANK=ADDR" e)
         | Some i ->
           let rank_s = String.trim (String.sub e 0 i) in
           let addr = String.trim (String.sub e (i + 1) (String.length e - i - 1)) in
           (match int_of_string_opt rank_s with
            | None -> Error (Printf.sprintf "peer entry %S: bad rank %S" e rank_s)
            | Some rank when rank < 0 ->
              Error (Printf.sprintf "peer entry %S: negative rank" e)
            | Some _ when addr = "" ->
              Error (Printf.sprintf "peer entry %S: empty address" e)
            | Some rank when Hashtbl.mem t.by_rank rank ->
              Error (Printf.sprintf "peer entry %S: duplicate rank %d" e rank)
            | Some rank ->
              add t ~rank ~addr;
              loop rest))
  in
  loop entries
