(** The narrow waist of the transport subsystem: a pluggable datagram
    backend. Moves opaque byte blobs between string-keyed addresses,
    best-effort (property P1 and nothing else). Implementations:
    {!Udp} (real sockets) and {!Loopback} (in-process, deterministic).
    Framing and endpoint addressing live above, in {!Frame} and
    {!Peers}. *)

type stats = {
  mutable sent : int;          (** datagrams handed to the backend *)
  mutable delivered : int;     (** datagrams handed to the rx callback *)
  mutable bad_frame : int;     (** rx datagrams rejected by the frame codec *)
  mutable dropped : int;       (** no route / no rx callback / closed peer *)
  mutable send_errors : int;   (** OS-level send failures *)
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

val fresh_stats : unit -> stats

type rx = src:string -> Bytes.t -> unit
(** Receive callback; [src] is the sender's address in the backend's
    own scheme (a UDP [host:port], a loopback [mem:N]). *)

type t = {
  kind : string;           (** "udp", "loopback", ... *)
  local_addr : string;     (** this backend's own address *)
  mtu : int;               (** largest datagram the backend will carry *)
  send : dest:string -> Bytes.t -> unit;
  set_rx : rx -> unit;     (** install the receive callback (one at a time) *)
  fd : Unix.file_descr option;
      (** readiness handle for select-based drivers; [None] for
          in-process backends whose delivery rides the event engine *)
  poll : unit -> int;      (** drain ready datagrams into rx; count drained *)
  close : unit -> unit;
  stats : stats;
}

val export_metrics : ?prefix:string -> t -> Horus_obs.Metrics.t -> unit
(** Mirror the backend's stats into a registry as monotone
    [<prefix>.sent], [<prefix>.delivered], [<prefix>.bad_frame],
    [<prefix>.dropped], [<prefix>.send_errors], [<prefix>.bytes_sent],
    [<prefix>.bytes_received] counters ([prefix] defaults to
    ["transport"]). Called at snapshot time, like [Net.export_metrics]. *)

val export_metrics_sum : ?prefix:string -> t list -> Horus_obs.Metrics.t -> unit
(** Same, summing the stats of several backends (a world hosting many
    endpoints). *)
