(* Chaos: a fault-injecting wrapper around any Backend.

   The narrow waist is the right place for network adversity: every
   datagram — UDP or in-process loopback — passes through one [send],
   so one wrapper gives the whole stack drop, duplication, reordering,
   delay, corruption and one-way partitions, without either the
   backend below or the protocol layers above knowing.

   All randomness flows through one seeded Prng and every delayed or
   reordered release rides the shared event engine, so under virtual
   time a (profile, seed) pair replays byte-identically — the same
   property that makes Scenario runs shrinkable — while under a
   wall-clock Driver the identical profile produces real, wall-time
   faults. The profile serializes to JSON so a failing soak run can
   commit its adversary next to its schedule (see lib/check).

   Fault semantics, in decision order per datagram:
     - partition: a one-way (from rank, to rank) block, timed from the
       controller's creation (profile) or toggled at runtime (API);
       blocked datagrams vanish, as across a real partition.
     - drop: the datagram vanishes.
     - corrupt: one uniformly chosen bit flips; the CRC in the frame
       codec above must catch it (it surfaces as a bad_frame, never as
       a delivered payload).
     - duplicate: an extra copy is forwarded, uniformly delayed within
       [dup_delay].
     - reorder: the datagram is parked in a bounded holdback queue and
       released only after [reorder_window] later sends overtake it
       (or [reorder_flush] seconds, whichever comes first).
     - delay: forwarding is postponed by an exponential sample with
       mean [delay_mean], clamped to [delay_max].

   Note that partitions are evaluated when the datagram enters the
   wrapper, not when a delayed copy finally forwards — a datagram that
   made it onto the wire before the partition started is considered in
   flight, not blocked. *)

module Json = Horus_obs.Json
module Prng = Horus_util.Prng
module Engine = Horus_sim.Engine

type partition = {
  pt_from : int;           (* sender rank *)
  pt_to : int;             (* receiver rank *)
  pt_start : float;        (* seconds after controller creation *)
  pt_stop : float option;  (* heal time; None = never heals *)
}

type profile = {
  drop : float;
  duplicate : float;
  dup_delay : float;
  reorder : float;
  reorder_window : int;
  reorder_flush : float;
  delay : float;
  delay_mean : float;
  delay_max : float;
  corrupt : float;
  partitions : partition list;
}

let default =
  { drop = 0.0;
    duplicate = 0.0;
    dup_delay = 0.001;
    reorder = 0.0;
    reorder_window = 4;
    reorder_flush = 0.05;
    delay = 0.0;
    delay_mean = 0.005;
    delay_max = 0.05;
    corrupt = 0.0;
    partitions = [] }

let is_quiet p =
  p.drop = 0.0 && p.duplicate = 0.0 && p.reorder = 0.0 && p.delay = 0.0
  && p.corrupt = 0.0 && p.partitions = []

type stats = {
  mutable s_forwarded : int;   (* datagrams passed to the wrapped backend *)
  mutable s_dropped : int;
  mutable s_duplicated : int;
  mutable s_reordered : int;
  mutable s_delayed : int;
  mutable s_corrupted : int;
  mutable s_blocked : int;     (* eaten by a partition *)
}

type t = {
  engine : Engine.t;
  profile : profile;
  prng : Prng.t;
  t0 : float;                  (* engine time at creation; partition origin *)
  rank_of : string -> int option;
  stats : stats;
  mutable blocks : (int * int) list;  (* runtime one-way blocks *)
}

let create ~engine ?peers ~seed profile =
  if profile.drop < 0.0 || profile.drop > 1.0 then invalid_arg "Chaos.create: drop";
  if profile.duplicate < 0.0 || profile.duplicate > 1.0 then
    invalid_arg "Chaos.create: duplicate";
  if profile.reorder < 0.0 || profile.reorder > 1.0 then invalid_arg "Chaos.create: reorder";
  if profile.delay < 0.0 || profile.delay > 1.0 then invalid_arg "Chaos.create: delay";
  if profile.corrupt < 0.0 || profile.corrupt > 1.0 then invalid_arg "Chaos.create: corrupt";
  if profile.reorder_window < 1 then invalid_arg "Chaos.create: reorder_window must be >= 1";
  { engine;
    profile;
    prng = Prng.create seed;
    t0 = Engine.now engine;
    rank_of =
      (match peers with
       | Some book -> fun addr -> Peers.rank_of book ~addr
       | None -> fun _ -> None);
    stats =
      { s_forwarded = 0; s_dropped = 0; s_duplicated = 0; s_reordered = 0; s_delayed = 0;
        s_corrupted = 0; s_blocked = 0 };
    blocks = [] }

let stats t = t.stats

let profile t = t.profile

(* --- partitions --- *)

let block t ~from_rank ~to_rank =
  if not (List.mem (from_rank, to_rank) t.blocks) then
    t.blocks <- (from_rank, to_rank) :: t.blocks

let unblock t ~from_rank ~to_rank =
  t.blocks <- List.filter (fun b -> b <> (from_rank, to_rank)) t.blocks

let heal t = t.blocks <- []

let is_blocked t ~from_rank ~to_rank =
  List.mem (from_rank, to_rank) t.blocks
  || (let elapsed = Engine.now t.engine -. t.t0 in
      List.exists
        (fun p ->
           p.pt_from = from_rank && p.pt_to = to_rank && elapsed >= p.pt_start
           && (match p.pt_stop with None -> true | Some stop -> elapsed < stop))
        t.profile.partitions)

(* --- the wrapper --- *)

type held = {
  h_dest : string;
  h_payload : Bytes.t;
  mutable h_left : int;     (* later sends still to overtake this one *)
  mutable h_done : bool;
}

let wrap ?rank t (b : Backend.t) =
  let my_rank =
    match rank with Some r -> Some r | None -> t.rank_of b.Backend.local_addr
  in
  let forward ~dest payload =
    t.stats.s_forwarded <- t.stats.s_forwarded + 1;
    b.Backend.send ~dest payload
  in
  let held : held list ref = ref [] in
  let release h =
    if not h.h_done then begin
      h.h_done <- true;
      forward ~dest:h.h_dest h.h_payload
    end
  in
  (* Every send overtakes the parked datagrams by one. *)
  let tick_held () =
    if !held <> [] then
      held :=
        List.filter
          (fun h ->
             if h.h_done then false
             else begin
               h.h_left <- h.h_left - 1;
               if h.h_left <= 0 then begin
                 release h;
                 false
               end
               else true
             end)
          !held
  in
  let p = t.profile in
  let send ~dest payload =
    let blocked =
      match (my_rank, t.rank_of dest) with
      | Some f, Some r -> is_blocked t ~from_rank:f ~to_rank:r
      | _ -> false
    in
    if blocked then t.stats.s_blocked <- t.stats.s_blocked + 1
    else if p.drop > 0.0 && Prng.chance t.prng p.drop then
      t.stats.s_dropped <- t.stats.s_dropped + 1
    else begin
      let payload =
        if p.corrupt > 0.0 && Bytes.length payload > 0 && Prng.chance t.prng p.corrupt
        then begin
          t.stats.s_corrupted <- t.stats.s_corrupted + 1;
          let garbled = Bytes.copy payload in
          let bit = Prng.int t.prng (8 * Bytes.length garbled) in
          let byte = bit / 8 in
          Bytes.set_uint8 garbled byte
            (Bytes.get_uint8 garbled byte lxor (1 lsl (bit mod 8)));
          garbled
        end
        else payload
      in
      if p.duplicate > 0.0 && Prng.chance t.prng p.duplicate then begin
        t.stats.s_duplicated <- t.stats.s_duplicated + 1;
        let copy = Bytes.copy payload in
        let lag = if p.dup_delay > 0.0 then Prng.float t.prng p.dup_delay else 0.0 in
        ignore (Engine.schedule t.engine ~delay:lag (fun () -> forward ~dest copy))
      end;
      if p.reorder > 0.0 && Prng.chance t.prng p.reorder then begin
        t.stats.s_reordered <- t.stats.s_reordered + 1;
        tick_held ();
        let h =
          { h_dest = dest; h_payload = payload; h_left = p.reorder_window; h_done = false }
        in
        held := !held @ [ h ];
        (* Low-traffic backstop: a parked datagram must not be
           stranded when no later sends come along to overtake it. *)
        ignore
          (Engine.schedule t.engine ~delay:p.reorder_flush (fun () ->
               if not h.h_done then begin
                 release h;
                 held := List.filter (fun h' -> not h'.h_done) !held
               end))
      end
      else begin
        (if p.delay > 0.0 && Prng.chance t.prng p.delay then begin
           t.stats.s_delayed <- t.stats.s_delayed + 1;
           let lag =
             Float.min p.delay_max (Prng.exponential t.prng ~mean:p.delay_mean)
           in
           ignore (Engine.schedule t.engine ~delay:lag (fun () -> forward ~dest payload))
         end
         else forward ~dest payload);
        tick_held ()
      end
    end
  in
  { b with
    Backend.kind = "chaos+" ^ b.Backend.kind;
    send }

(* --- observability --- *)

let export_metrics ?(prefix = "chaos") t m =
  let c name v = Horus_obs.Metrics.(set_counter (counter m (prefix ^ "." ^ name)) v) in
  c "forwarded" t.stats.s_forwarded;
  c "dropped" t.stats.s_dropped;
  c "duplicated" t.stats.s_duplicated;
  c "reordered" t.stats.s_reordered;
  c "delayed" t.stats.s_delayed;
  c "corrupted" t.stats.s_corrupted;
  c "blocked" t.stats.s_blocked

(* --- profile (de)serialization --- *)

let partition_to_json p =
  Json.Obj
    ([ ("from", Json.Int p.pt_from);
       ("to", Json.Int p.pt_to);
       ("start", Json.Float p.pt_start) ]
     @ match p.pt_stop with None -> [] | Some s -> [ ("stop", Json.Float s) ])

let profile_to_json p =
  Json.Obj
    [ ("drop", Json.Float p.drop);
      ("duplicate", Json.Float p.duplicate);
      ("dup_delay", Json.Float p.dup_delay);
      ("reorder", Json.Float p.reorder);
      ("reorder_window", Json.Int p.reorder_window);
      ("reorder_flush", Json.Float p.reorder_flush);
      ("delay", Json.Float p.delay);
      ("delay_mean", Json.Float p.delay_mean);
      ("delay_max", Json.Float p.delay_max);
      ("corrupt", Json.Float p.corrupt);
      ("partitions", Json.List (List.map partition_to_json p.partitions)) ]

(* Lenient accessors, like Scenario's: missing fields take the default
   profile's values so hand-written profiles stay terse. *)
let jfloat ~default name j =
  match Option.bind (Json.member name j) Json.to_float with Some f -> f | None -> default

let jint ~default name j =
  match Option.bind (Json.member name j) Json.to_int with Some i -> i | None -> default

let partition_of_json j =
  match
    ( Option.bind (Json.member "from" j) Json.to_int,
      Option.bind (Json.member "to" j) Json.to_int )
  with
  | Some f, Some t ->
    Ok
      { pt_from = f;
        pt_to = t;
        pt_start = jfloat ~default:0.0 "start" j;
        pt_stop = Option.bind (Json.member "stop" j) Json.to_float }
  | _ -> Error "chaos partition needs integer \"from\" and \"to\" ranks"

let profile_of_json j =
  let d = default in
  let partitions =
    match Json.member "partitions" j with
    | None | Some Json.Null -> Ok []
    | Some (Json.List ps) ->
      List.fold_right
        (fun pj acc ->
           Result.bind acc (fun tl ->
               Result.map (fun p -> p :: tl) (partition_of_json pj)))
        ps (Ok [])
    | Some _ -> Error "chaos partitions must be a list"
  in
  Result.map
    (fun partitions ->
       { drop = jfloat ~default:d.drop "drop" j;
         duplicate = jfloat ~default:d.duplicate "duplicate" j;
         dup_delay = jfloat ~default:d.dup_delay "dup_delay" j;
         reorder = jfloat ~default:d.reorder "reorder" j;
         reorder_window = jint ~default:d.reorder_window "reorder_window" j;
         reorder_flush = jfloat ~default:d.reorder_flush "reorder_flush" j;
         delay = jfloat ~default:d.delay "delay" j;
         delay_mean = jfloat ~default:d.delay_mean "delay_mean" j;
         delay_max = jfloat ~default:d.delay_max "delay_max" j;
         corrupt = jfloat ~default:d.corrupt "corrupt" j;
         partitions })
    partitions

let profile_to_string p = Json.to_string ~indent:true (profile_to_json p)

let profile_of_string s =
  match Json.of_string s with
  | Error e -> Error ("chaos profile parse error: " ^ e)
  | Ok j -> profile_of_json j

let pp_profile fmt p =
  Format.fprintf fmt "drop=%g dup=%g reorder=%g/%d delay=%g corrupt=%g partitions=%d"
    p.drop p.duplicate p.reorder p.reorder_window p.delay p.corrupt
    (List.length p.partitions)
