(** Transport-wide default constants: the driver's pacing bounds and
    the backends' buffering limits, kept in one place. *)

val max_tick : float
(** Default cap on any single driver sleep (seconds). *)

val min_sleep : float
(** Default floor under driver sleeps (seconds). *)

val pending_limit : int
(** Default per-endpoint bound on queued undelivered loopback
    datagrams. *)
