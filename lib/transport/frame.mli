(** Versioned wire frame for real-network datagrams: magic, version
    byte, source endpoint and destination group (via the shared
    {!Horus_msg.Wire} codecs), explicit payload length, and a trailing
    CRC-32 — so truncated, padded or garbled packets are rejected at
    the door. Layout (big-endian):

    [magic u16 | version u8 | src u32 | gid u32 | paylen u32 | payload | crc32 u32] *)

open Horus_msg

val magic : int
(** 0x4844, "HD": a Horus datagram. *)

val version : int

val overhead : int
(** Bytes added around a payload (header + trailing CRC). *)

type header = { h_src : Addr.endpoint; h_group : Addr.group }

type error =
  | Too_short of int              (** total bytes received *)
  | Bad_magic of int
  | Bad_version of int
  | Bad_crc of { expected : int; got : int }
  | Length_mismatch of { declared : int; actual : int }

val error_to_string : error -> string

val pp_error : Format.formatter -> error -> unit

val encode : ?version:int -> src:Addr.endpoint -> group:Addr.group -> Bytes.t -> Bytes.t
(** [encode ~src ~group payload] wraps a stack payload in a checked
    envelope. [version] is exposed for the codec's own rejection tests;
    real senders use the default. *)

val decode : Bytes.t -> (header * Bytes.t, error) result
(** Inverse of {!encode}. Checks, in order: minimum length, magic,
    version, CRC (over everything before it), declared payload
    length. *)
