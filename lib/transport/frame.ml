(* Versioned wire frame for real-network datagrams.

   The simulator delivers typed byte blobs between trusted nodes; a
   real network delivers whatever arrived on the port. Every datagram a
   transport backend carries is therefore wrapped in a self-describing
   envelope that (a) identifies the protocol and its version, (b) names
   the sending endpoint and the destination group — via the shared
   Horus_msg.Wire address codecs, so the frame speaks the same address
   format as every layer header above it — and (c) carries an explicit
   payload length plus a CRC-32 over everything, so truncated, padded
   or garbled packets are rejected at the door instead of confusing a
   protocol layer.

   Layout (big-endian, CRC over all bytes before it):

     +-------+---------+---------+---------+---------+---------+-------+
     | magic | version | src eid | grp gid | paylen  | payload | crc32 |
     |  u16  |   u8    |   u32   |   u32   |   u32   | paylen  |  u32  |
     +-------+---------+---------+---------+---------+---------+-------+ *)

open Horus_msg

let magic = 0x4844 (* "HD": a Horus datagram *)

let version = 1

let header_bytes = 2 + 1 + 4 + 4 + 4

let overhead = header_bytes + 4 (* + trailing CRC *)

type header = { h_src : Addr.endpoint; h_group : Addr.group }

type error =
  | Too_short of int              (* total bytes received *)
  | Bad_magic of int
  | Bad_version of int
  | Bad_crc of { expected : int; got : int }
  | Length_mismatch of { declared : int; actual : int }

let error_to_string = function
  | Too_short n -> Printf.sprintf "frame too short (%d bytes)" n
  | Bad_magic m -> Printf.sprintf "bad magic 0x%04x" m
  | Bad_version v -> Printf.sprintf "unsupported version %d" v
  | Bad_crc { expected; got } ->
    Printf.sprintf "CRC mismatch (computed 0x%08x, frame says 0x%08x)" expected got
  | Length_mismatch { declared; actual } ->
    Printf.sprintf "length mismatch (header says %d, payload is %d)" declared actual

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let encode ?(version = version) ~src ~group payload =
  let m = Msg.of_bytes ~headroom:header_bytes payload in
  Msg.push_u32 m (Bytes.length payload);
  Wire.push_group m group;
  Wire.push_endpoint m src;
  Msg.push_u8 m version;
  Msg.push_u16 m magic;
  let body = Msg.to_bytes m in
  let n = Bytes.length body in
  let frame = Bytes.create (n + 4) in
  Bytes.blit body 0 frame 0 n;
  Bytes.set_int32_be frame n
    (Int32.of_int (Horus_util.Crc.crc32 body ~off:0 ~len:n));
  frame

let decode b =
  let n = Bytes.length b in
  if n < overhead then Error (Too_short n)
  else begin
    let m = Msg.of_bytes ~headroom:0 (Bytes.sub b 0 (n - 4)) in
    let mg = Msg.pop_u16 m in
    if mg <> magic then Error (Bad_magic mg)
    else begin
      let v = Msg.pop_u8 m in
      if v <> version then Error (Bad_version v)
      else begin
        (* Magic and version vouch for the sender speaking our dialect;
           the CRC then vouches for the rest of the bytes before any
           field is interpreted. *)
        let expected = Horus_util.Crc.crc32 b ~off:0 ~len:(n - 4) in
        let got = Int32.to_int (Bytes.get_int32_be b (n - 4)) land 0xffffffff in
        if expected <> got then Error (Bad_crc { expected; got })
        else begin
          let h_src = Wire.pop_endpoint m in
          let h_group = Wire.pop_group m in
          let declared = Msg.pop_u32 m in
          let actual = Msg.length m in
          if declared <> actual then Error (Length_mismatch { declared; actual })
          else Ok ({ h_src; h_group }, Msg.to_bytes m)
        end
      end
    end
  end
