(** Wall-clock driver: runs an event engine against real time.

    Anchors engine time to [Unix.gettimeofday] at creation, then
    alternates draining the backends' sockets and firing engine events
    that have come due, sleeping in [Unix.select] on the backends'
    file descriptors in between. One process, one driver; the same
    stacks and timers that run under the simulator run unmodified. *)

type t

val create :
  ?max_tick:float -> ?min_sleep:float -> Horus_sim.Engine.t -> Backend.t list -> t
(** [max_tick] (default {!Defaults.max_tick}) caps any single sleep,
    bounding the poll latency of fd-less backends such as loopback.
    [min_sleep] (default {!Defaults.min_sleep}) floors it, so engine
    events stuck in the past
    (e.g. a heavy chaos delay queue) cannot degrade the idle loop into
    a 0-timeout busy spin. *)

val sleep_for :
  ?max_wait:float -> max_tick:float -> min_sleep:float -> until_timer:float -> unit ->
  float
(** The idle-step sleep: [until_timer] clamped into
    [[min_sleep, max_tick]], then capped by [max_wait] (which may
    force 0). Pure; exposed for unit tests. *)

val now : t -> float
(** Engine time corresponding to the current wall-clock instant. *)

val pump : t -> int
(** Drain every backend and run all engine events now due; returns the
    number of datagrams received plus events fired (0 = idle). *)

val step : ?max_wait:float -> t -> int
(** {!pump}; if idle, sleep until the next timer, a readable socket,
    [max_wait] or [max_tick] — whichever is first — then pump again. *)

val run_until : ?timeout:float -> t -> (unit -> bool) -> bool
(** Step until the predicate holds or [timeout] (default 30 s) wall
    seconds elapse; returns the predicate's final value. *)

val run_for : t -> duration:float -> unit
(** Step for [duration] wall seconds. *)
