(** Wall-clock driver: runs an event engine against real time.

    Anchors engine time to [Unix.gettimeofday] at creation, then
    alternates draining the backends' sockets and firing engine events
    that have come due, sleeping in [Unix.select] on the backends'
    file descriptors in between. One process, one driver; the same
    stacks and timers that run under the simulator run unmodified. *)

type t

val create : ?max_tick:float -> Horus_sim.Engine.t -> Backend.t list -> t
(** [max_tick] (default 0.05 s) caps any single sleep, bounding the
    poll latency of fd-less backends such as loopback. *)

val now : t -> float
(** Engine time corresponding to the current wall-clock instant. *)

val pump : t -> int
(** Drain every backend and run all engine events now due; returns the
    number of datagrams received plus events fired (0 = idle). *)

val step : ?max_wait:float -> t -> int
(** {!pump}; if idle, sleep until the next timer, a readable socket,
    [max_wait] or [max_tick] — whichever is first — then pump again. *)

val run_until : ?timeout:float -> t -> (unit -> bool) -> bool
(** Step until the predicate holds or [timeout] (default 30 s) wall
    seconds elapse; returns the predicate's final value. *)

val run_for : t -> duration:float -> unit
(** Step for [duration] wall seconds. *)
