(* Wall-clock driver: pumps an event engine against real time and real
   sockets.

   The simulator and the deployment share one scheduling model — the
   engine's timed event queue. Under simulation, tests run the queue
   in virtual time. Under deployment, this driver anchors engine time
   to [Unix.gettimeofday] at creation ([target] below is the engine
   time that "now" corresponds to) and alternately

     - drains every backend's socket ([poll]), which feeds received
       datagrams into the stacks, and
     - runs all engine events that have come due ([Engine.run_until]),
       which fires the stacks' retransmit/heartbeat timers.

   Between rounds it sleeps in [Unix.select] on the backends' file
   descriptors, waking on the first datagram or the next timer,
   whichever comes first — so the process is idle when the network is.
   Backends without an fd (loopback) are covered by [max_tick], a cap
   on any single sleep. *)

type t = {
  engine : Horus_sim.Engine.t;
  backends : Backend.t list;
  fds : Unix.file_descr list;
  t0_wall : float;
  t0_engine : float;
  max_tick : float;
  min_sleep : float;
}

(* The sleep for one idle step, as a pure function so the clamp is
   unit-testable. [until_timer] is how far away the next engine event
   is; when it is zero or in the past (events scheduled behind the
   wall clock, as a heavy chaos delay queue can produce), the sleep is
   clamped up to [min_sleep] — a 0-timeout select degenerates into a
   busy spin. The caller's [max_wait] still caps from above (and may
   legitimately force 0: "don't sleep at all"). *)
let sleep_for ?max_wait ~max_tick ~min_sleep ~until_timer () =
  let w = Float.min max_tick (Float.max min_sleep until_timer) in
  match max_wait with Some m -> Float.min w (Float.max 0.0 m) | None -> w

let create ?(max_tick = Defaults.max_tick) ?(min_sleep = Defaults.min_sleep) engine
    backends =
  if max_tick <= 0.0 then invalid_arg "Driver.create: max_tick must be positive";
  if min_sleep < 0.0 || min_sleep > max_tick then
    invalid_arg "Driver.create: min_sleep must be within [0, max_tick]";
  { engine;
    backends;
    fds = List.filter_map (fun (b : Backend.t) -> b.Backend.fd) backends;
    t0_wall = Unix.gettimeofday ();
    t0_engine = Horus_sim.Engine.now engine;
    max_tick;
    min_sleep }

(* Engine time corresponding to this wall-clock instant. *)
let target t = t.t0_engine +. (Unix.gettimeofday () -. t.t0_wall)

let now = target

let pump t =
  let received =
    List.fold_left (fun n (b : Backend.t) -> n + b.Backend.poll ()) 0 t.backends
  in
  let before = Horus_sim.Engine.executed t.engine in
  let due = target t in
  if due > Horus_sim.Engine.now t.engine then
    Horus_sim.Engine.run_until t.engine ~time:due;
  received + (Horus_sim.Engine.executed t.engine - before)

let step ?max_wait t =
  let worked = pump t in
  if worked > 0 then worked
  else begin
    (* Nothing due: sleep until the next timer, the sleep cap, or the
       caller's bound — or until a socket becomes readable. *)
    let until_timer =
      match Horus_sim.Engine.next_time t.engine with
      | Some tm -> tm -. target t
      | None -> t.max_tick
    in
    let wait =
      sleep_for ?max_wait ~max_tick:t.max_tick ~min_sleep:t.min_sleep ~until_timer ()
    in
    (if wait > 0.0 then
       match Unix.select t.fds [] [] wait with
       | _ -> ()
       | exception Unix.Unix_error (EINTR, _, _) -> ());
    pump t
  end

let run_until ?(timeout = 30.0) t pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    if pred () then true
    else begin
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then pred ()
      else begin
        ignore (step ~max_wait:left t);
        loop ()
      end
    end
  in
  loop ()

let run_for t ~duration =
  let stop = Unix.gettimeofday () +. duration in
  while Unix.gettimeofday () < stop do
    ignore (step ~max_wait:(stop -. Unix.gettimeofday ()) t)
  done
