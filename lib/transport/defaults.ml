(* Transport-wide default constants, hoisted into one place so the
   driver's pacing and the backends' buffering stay tunable from a
   single spot instead of drifting apart as magic literals. *)

(* Cap on any single driver sleep: bounds the poll latency of fd-less
   backends (loopback) that cannot wake a select. *)
let max_tick = 0.05

(* Floor under driver sleeps: a 0-timeout select degenerates into a
   busy spin. *)
let min_sleep = 0.0005

(* Per-endpoint bound on queued undelivered datagrams in the loopback
   backend — the analogue of SO_RCVBUF; beyond it the oldest are
   dropped (datagram semantics). *)
let pending_limit = 1024
