(** Fault injection at the narrow waist: wrap any {!Backend} so its
    sends suffer drops, duplication, bounded reordering,
    distribution-driven delay, single-bit corruption (to be caught by
    the frame CRC) and one-way partitions between peer ranks.

    All randomness comes from one seeded {!Horus_util.Prng} and every
    deferred release rides the shared {!Horus_sim.Engine}, so a
    (profile, seed) pair replays byte-identically under virtual time
    and runs in real time under a wall-clock {!Driver} — the same
    wrapper serves deterministic soak tests and live UDP chaos. *)

type partition = {
  pt_from : int;           (** sender rank *)
  pt_to : int;             (** receiver rank *)
  pt_start : float;        (** seconds after controller creation *)
  pt_stop : float option;  (** heal time; [None] = never heals *)
}
(** A scheduled one-way block: datagrams from [pt_from] to [pt_to]
    vanish while the window is open. Use two entries for a symmetric
    partition. *)

type profile = {
  drop : float;            (** P(datagram vanishes) *)
  duplicate : float;       (** P(an extra copy is sent) *)
  dup_delay : float;       (** duplicate's extra lag, uniform in [0, dup_delay] *)
  reorder : float;         (** P(datagram parks in the holdback queue) *)
  reorder_window : int;    (** later sends that overtake a parked datagram *)
  reorder_flush : float;   (** max parking time, seconds *)
  delay : float;           (** P(forwarding is postponed) *)
  delay_mean : float;      (** exponential mean of the postponement *)
  delay_max : float;       (** clamp on the postponement *)
  corrupt : float;         (** P(one uniformly chosen bit flips) *)
  partitions : partition list;
}

val default : profile
(** Transparent: all probabilities zero, no partitions. *)

val is_quiet : profile -> bool
(** No fault can ever fire (every probability zero, no partitions). *)

type t
(** A chaos controller: one per world/hub, shared by every wrapped
    backend so fault decisions draw from one deterministic stream. *)

type stats = {
  mutable s_forwarded : int;
  mutable s_dropped : int;
  mutable s_duplicated : int;
  mutable s_reordered : int;
  mutable s_delayed : int;
  mutable s_corrupted : int;
  mutable s_blocked : int;
}

val create :
  engine:Horus_sim.Engine.t -> ?peers:Peers.t -> seed:int -> profile -> t
(** [peers] maps backend addresses to ranks; without it partitions
    never match (the probabilistic faults still fire). Profile
    partition windows are timed from the engine clock at creation.
    Raises [Invalid_argument] on probabilities outside [0, 1] or a
    non-positive reorder window. *)

val wrap : ?rank:int -> t -> Backend.t -> Backend.t
(** Interpose on the backend's [send]; everything else (rx, fd, poll,
    stats, close) is the wrapped backend's own. [rank] identifies the
    sender for partition checks; it defaults to looking the backend's
    [local_addr] up in [peers]. *)

val stats : t -> stats

val profile : t -> profile

val block : t -> from_rank:int -> to_rank:int -> unit
(** Open a runtime one-way block (idempotent), on top of whatever the
    profile schedules. *)

val unblock : t -> from_rank:int -> to_rank:int -> unit

val heal : t -> unit
(** Clear every runtime block (profile partitions keep their own
    windows). *)

val is_blocked : t -> from_rank:int -> to_rank:int -> bool

val export_metrics : ?prefix:string -> t -> Horus_obs.Metrics.t -> unit
(** Mirror {!stats} into the registry as [<prefix>.dropped],
    [<prefix>.duplicated], ... counters ([prefix] defaults to
    ["chaos"]); call at snapshot time. *)

val profile_to_json : profile -> Horus_obs.Json.t
val profile_of_json : Horus_obs.Json.t -> (profile, string) result
(** Lenient: missing fields take {!default}'s values. *)

val profile_to_string : profile -> string
val profile_of_string : string -> (profile, string) result

val pp_profile : Format.formatter -> profile -> unit
