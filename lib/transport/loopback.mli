(** In-process loopback backend: datagrams between backends on one
    hub, delivered through the owning event engine [latency] seconds
    after the send (default 0) — deterministic under virtual time,
    real-time under a wall-clock {!Driver} pumping the same engine.
    Addresses are [mem:N] (auto-allocated) or caller-chosen. *)

type hub

val hub : ?latency:float -> Horus_sim.Engine.t -> hub

val pending_limit : int
(** Datagrams arriving before the receiver installs its rx callback
    are queued up to this many (the loopback analogue of SO_RCVBUF)
    and flushed, in order, when [set_rx] runs; beyond the limit the
    oldest queued datagram is dropped and counted. *)

val create : ?addr:string -> hub -> Backend.t
(** Bind a new backend on the hub. Raises [Invalid_argument] if [addr]
    is already bound. Sends to unknown destinations or closed
    receivers are counted as drops. *)
