(** In-process loopback backend: datagrams between backends on one
    hub, delivered through the owning event engine [latency] seconds
    after the send (default 0) — deterministic under virtual time,
    real-time under a wall-clock {!Driver} pumping the same engine.
    Addresses are [mem:N] (auto-allocated) or caller-chosen. *)

type hub

val hub : ?latency:float -> Horus_sim.Engine.t -> hub

val create : ?addr:string -> hub -> Backend.t
(** Bind a new backend on the hub. Raises [Invalid_argument] if [addr]
    is already bound. Sends to unknown destinations, closed receivers
    or receivers without an rx callback are counted as drops. *)
