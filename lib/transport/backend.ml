(* The narrow waist of the transport subsystem (the hourglass model):
   every way of moving a datagram — real UDP sockets, the in-process
   loopback, and whatever comes later (TCP bundles, shared memory,
   DPDK) — is squeezed through this one record so the entire Horus
   stack above it is backend-agnostic.

   A backend is deliberately dumber than the simulator's Net: it moves
   opaque byte blobs between string-keyed addresses, best-effort, with
   no ordering or delivery promises (property P1 and nothing else).
   Framing, addressing of endpoints, and loss repair all live above
   (Frame, Peers, and the protocol stack respectively). *)

type stats = {
  mutable sent : int;          (* datagrams handed to the backend *)
  mutable delivered : int;     (* datagrams handed to the rx callback *)
  mutable bad_frame : int;     (* rx datagrams rejected by the frame codec *)
  mutable dropped : int;       (* no route / no rx callback / closed peer *)
  mutable send_errors : int;   (* OS-level send failures *)
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

let fresh_stats () =
  { sent = 0; delivered = 0; bad_frame = 0; dropped = 0; send_errors = 0;
    bytes_sent = 0; bytes_received = 0 }

type rx = src:string -> Bytes.t -> unit

type t = {
  kind : string;           (* "udp", "loopback", ... *)
  local_addr : string;     (* this backend's own address, in its scheme *)
  mtu : int;               (* largest datagram the backend will carry *)
  send : dest:string -> Bytes.t -> unit;
  set_rx : rx -> unit;     (* install the receive callback (one at a time) *)
  fd : Unix.file_descr option;  (* readiness handle for select-based drivers *)
  poll : unit -> int;      (* drain ready datagrams into rx; count drained *)
  close : unit -> unit;
  stats : stats;
}

(* Mirror the stats of a set of backends into a metrics registry as
   monotone counters (summed across the set), the same way Net exports
   its wire stats: called at snapshot time, so the registry needs no
   hook in the datagram hot path. *)
let export_metrics_sum ?(prefix = "transport") backends m =
  let total f = List.fold_left (fun acc b -> acc + f b.stats) 0 backends in
  let c name v = Horus_obs.Metrics.(set_counter (counter m (prefix ^ "." ^ name)) v) in
  c "sent" (total (fun s -> s.sent));
  c "delivered" (total (fun s -> s.delivered));
  c "bad_frame" (total (fun s -> s.bad_frame));
  c "dropped" (total (fun s -> s.dropped));
  c "send_errors" (total (fun s -> s.send_errors));
  c "bytes_sent" (total (fun s -> s.bytes_sent));
  c "bytes_received" (total (fun s -> s.bytes_received))

let export_metrics ?prefix t m = export_metrics_sum ?prefix [ t ] m
