(** Checksums and keyed MACs for the CHKSUM and SIGN layers. *)

val fnv1a64 : ?init:int64 -> Bytes.t -> off:int -> len:int -> int64
(** FNV-1a 64-bit hash of a byte range. *)

val checksum : Bytes.t -> off:int -> len:int -> int64

val checksum_string : string -> int64

val mac : key:string -> Bytes.t -> off:int -> len:int -> int64
(** Keyed MAC (sandwich FNV); non-cryptographic stand-in, see DESIGN.md. *)

val crc32 : ?init:int -> Bytes.t -> off:int -> len:int -> int
(** CRC-32 (ISO-HDLC / zlib polynomial) of a byte range, as an unsigned
    32-bit value in an [int]. [init] chains partial checksums. Used by
    the transport frame codec to reject garbled datagrams. *)

val crc32_string : string -> int
