(* Checksums and keyed MACs for the CHKSUM and SIGN layers.

   FNV-1a is a non-cryptographic hash; the SIGN layer's "MAC" mixes a
   key into the initial state. That is enough to exercise the protocol
   behaviour (reject tampered or forged traffic); cipher strength is
   out of scope for the reproduction (see DESIGN.md substitutions). *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a64 ?(init = fnv_offset) b ~off ~len =
  let h = ref init in
  for i = off to off + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)));
    h := Int64.mul !h fnv_prime
  done;
  !h

let checksum b ~off ~len = fnv1a64 b ~off ~len

let checksum_string s =
  let b = Bytes.unsafe_of_string s in
  fnv1a64 b ~off:0 ~len:(Bytes.length b)

(* Keyed MAC: hash the key into the initial state, then the data, then
   the key again (sandwich construction). *)
let mac ~key b ~off ~len =
  let kb = Bytes.of_string key in
  let h = fnv1a64 kb ~off:0 ~len:(Bytes.length kb) in
  let h = fnv1a64 ~init:h b ~off ~len in
  fnv1a64 ~init:h kb ~off:0 ~len:(Bytes.length kb)

(* --- CRC-32 (ISO-HDLC / zlib polynomial, reflected), for the frame
   codec of lib/transport. Table-driven, one table built at load. --- *)

let crc32_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(init = 0) b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then invalid_arg "Crc.crc32";
  let table = Lazy.force crc32_table in
  let c = ref (init lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32_string s =
  let b = Bytes.unsafe_of_string s in
  crc32 b ~off:0 ~len:(Bytes.length b)
