(** The directory wire protocol: versioned request/reply messages
    carried in ordinary {!Horus_transport.Frame} frames on one
    reserved gid ({!gid}), so directory traffic multiplexes onto any
    socket a transport link already owns. Every message carries a
    protocol {!version} byte, an opcode and a request id for
    correlation over a connectionless socket. *)

val gid : int
(** The reserved group id directory frames travel on. *)

val service_eid : int
(** The src endpoint id stamped on frames the service sends. *)

val version : int

(** One replicated mutation. Leases travel as {e remaining} duration,
    re-anchored on the receiving replica's clock. *)
type change =
  | Ch_bind of { rank : int; addr : string; remaining : float }
  | Ch_remove of int
  | Ch_sub of string
  | Ch_unsub of string

type snapshot_group = {
  sg_group : int;
  sg_version : int;
  sg_entries : (int * string * float) list;  (** rank, addr, remaining lease *)
  sg_subs : string list;
}

type request =
  | Register of { group : int; rank : int; addr : string; lease : float }
      (** bind [rank -> addr] in [group] for [lease] seconds *)
  | Renew of { group : int; rank : int; lease : float }
  | Unregister of { group : int; rank : int }
  | Lookup of { group : int; rank : int }
  | List_group of int
  | List_groups
  | Subscribe of int  (** change notifications for one group *)
  | Unsubscribe of int
  | Repl_delta of { epoch : int; seq : int; group : int; version : int; change : change }
      (** primary -> backup: one mutation; [seq] gap = ask for a snapshot *)
  | Repl_heartbeat of { epoch : int; seq : int }
      (** primary -> backup: liveness + high-water seq *)
  | Repl_sync of { from_seq : int }
      (** backup -> primary: resynchronize me from a snapshot *)
  | Repl_snapshot of { epoch : int; seq : int; groups : snapshot_group list }
      (** primary -> backup: the full state image at [seq] *)

type error_code = Unknown_group | Unknown_rank | Bad_request | Not_primary

type reply =
  | Registered of { group : int; rank : int; version : int; expires : float }
  | Found of { group : int; rank : int; addr : string }
  | Entries of { group : int; version : int; entries : (int * string) list }
      (** rank-sorted membership snapshot *)
  | Groups of int list
  | Subscribed of { group : int; version : int }
  | Done  (** unregister / unsubscribe acknowledged *)
  | Notify of { group : int; version : int; rank : int; addr : string option }
      (** unsolicited (req id 0): a binding changed; [None] = removed *)
  | Error of { code : error_code; detail : string }

val error_code_to_string : error_code -> string

val encode_request : req_id:int -> request -> Bytes.t
val decode_request : Bytes.t -> (int * request, string) result

val encode_reply : req_id:int -> reply -> Bytes.t
val decode_reply : Bytes.t -> (int * reply, string) result

val pp_request : Format.formatter -> request -> unit
val pp_reply : Format.formatter -> reply -> unit
