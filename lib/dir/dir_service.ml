(* The directory service: the rank->address book as a network
   endpoint instead of a static file.

   State is per-group: a version counter, a table of leased bindings
   and a subscriber list. Every mutation (a new or changed binding, an
   unregister, a lease eviction) bumps the group's version and fans a
   Notify frame out to the subscribers in sorted-address order; the
   lease sweep walks groups in sorted-gid order and ranks in sorted
   order, so under virtual time the whole notification stream is a
   deterministic function of the request stream — the property the
   directory soak fingerprints.

   The service owns one backend socket. Requests and replies ride the
   ordinary Frame codec on the reserved directory gid; replies go to
   the datagram's socket source address — the directory is what
   bootstraps the peer book, so it cannot rely on one. *)

module T = Horus_transport
module P = Dir_protocol
module Engine = Horus_sim.Engine

type entry = {
  en_addr : string;
  mutable en_expires : float;
}

type group_state = {
  mutable g_version : int;
  g_entries : (int, entry) Hashtbl.t;  (* rank -> binding *)
  mutable g_subs : string list;        (* subscriber socket addrs, sorted *)
}

type stats = {
  mutable s_requests : int;
  mutable s_replies : int;
  mutable s_notifies : int;
  mutable s_evictions : int;
  mutable s_errors : int;   (* error replies sent *)
  mutable s_bad : int;      (* undecodable frames / messages *)
}

type t = {
  engine : Engine.t;
  backend : T.Backend.t;
  max_lease : float;
  groups : (int, group_state) Hashtbl.t;
  stats : stats;
  mutable sweep : Engine.handle option;
  mutable stopped : bool;
}

let group_state t gid =
  match Hashtbl.find_opt t.groups gid with
  | Some g -> g
  | None ->
    let g = { g_version = 0; g_entries = Hashtbl.create 8; g_subs = [] } in
    Hashtbl.replace t.groups gid g;
    g

let send t ~dest reply ~req_id =
  t.stats.s_replies <- t.stats.s_replies + 1;
  (match reply with P.Error _ -> t.stats.s_errors <- t.stats.s_errors + 1 | _ -> ());
  t.backend.T.Backend.send ~dest
    (T.Frame.encode
       ~src:(Horus_msg.Addr.endpoint P.service_eid)
       ~group:(Horus_msg.Addr.group P.gid)
       (P.encode_reply ~req_id reply))

(* A binding changed: bump the version and tell the subscribers, in
   sorted-address order. *)
let notify t gid g ~rank ~addr =
  g.g_version <- g.g_version + 1;
  List.iter
    (fun sub ->
       t.stats.s_notifies <- t.stats.s_notifies + 1;
       send t ~dest:sub ~req_id:0
         (P.Notify { group = gid; version = g.g_version; rank; addr }))
    g.g_subs

let sorted_entries g =
  Hashtbl.fold (fun rank e acc -> (rank, e) :: acc) g.g_entries []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let handle t ~src ~req_id req =
  match req with
  | P.Register { group; rank; addr; lease } ->
    let lease = Float.min (Float.max lease 0.001) t.max_lease in
    let g = group_state t group in
    let expires = Engine.now t.engine +. lease in
    let changed =
      match Hashtbl.find_opt g.g_entries rank with
      | Some e when e.en_addr = addr ->
        e.en_expires <- Float.max e.en_expires expires;
        false
      | _ ->
        Hashtbl.replace g.g_entries rank { en_addr = addr; en_expires = expires };
        true
    in
    if changed then notify t group g ~rank ~addr:(Some addr);
    send t ~dest:src ~req_id
      (P.Registered { group; rank; version = g.g_version; expires })
  | P.Renew { group; rank; lease } -> (
    let lease = Float.min (Float.max lease 0.001) t.max_lease in
    match Hashtbl.find_opt t.groups group with
    | None ->
      send t ~dest:src ~req_id
        (P.Error { code = P.Unknown_group; detail = Printf.sprintf "group %d" group })
    | Some g -> (
      match Hashtbl.find_opt g.g_entries rank with
      | None ->
        send t ~dest:src ~req_id
          (P.Error
             { code = P.Unknown_rank; detail = Printf.sprintf "g=%d r=%d" group rank })
      | Some e ->
        e.en_expires <- Float.max e.en_expires (Engine.now t.engine +. lease);
        send t ~dest:src ~req_id
          (P.Registered { group; rank; version = g.g_version; expires = e.en_expires })))
  | P.Unregister { group; rank } -> (
    match Hashtbl.find_opt t.groups group with
    | None ->
      send t ~dest:src ~req_id
        (P.Error { code = P.Unknown_group; detail = Printf.sprintf "group %d" group })
    | Some g ->
      if Hashtbl.mem g.g_entries rank then begin
        Hashtbl.remove g.g_entries rank;
        notify t group g ~rank ~addr:None
      end;
      send t ~dest:src ~req_id P.Done)
  | P.Lookup { group; rank } -> (
    match Hashtbl.find_opt t.groups group with
    | None ->
      send t ~dest:src ~req_id
        (P.Error { code = P.Unknown_group; detail = Printf.sprintf "group %d" group })
    | Some g -> (
      match Hashtbl.find_opt g.g_entries rank with
      | Some e -> send t ~dest:src ~req_id (P.Found { group; rank; addr = e.en_addr })
      | None ->
        send t ~dest:src ~req_id
          (P.Error
             { code = P.Unknown_rank; detail = Printf.sprintf "g=%d r=%d" group rank })))
  | P.List_group group -> (
    match Hashtbl.find_opt t.groups group with
    | None ->
      send t ~dest:src ~req_id
        (P.Error { code = P.Unknown_group; detail = Printf.sprintf "group %d" group })
    | Some g ->
      let entries = List.map (fun (r, e) -> (r, e.en_addr)) (sorted_entries g) in
      send t ~dest:src ~req_id (P.Entries { group; version = g.g_version; entries }))
  | P.List_groups ->
    let gids =
      Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort compare
    in
    send t ~dest:src ~req_id (P.Groups gids)
  | P.Subscribe group ->
    let g = group_state t group in
    if not (List.mem src g.g_subs) then
      g.g_subs <- List.sort compare (src :: g.g_subs);
    send t ~dest:src ~req_id (P.Subscribed { group; version = g.g_version })
  | P.Unsubscribe group ->
    (match Hashtbl.find_opt t.groups group with
     | Some g -> g.g_subs <- List.filter (fun a -> a <> src) g.g_subs
     | None -> ());
    send t ~dest:src ~req_id P.Done

let rx t ~src frame =
  if not t.stopped then
    match T.Frame.decode frame with
    | Error _ ->
      t.backend.T.Backend.stats.T.Backend.bad_frame <-
        t.backend.T.Backend.stats.T.Backend.bad_frame + 1
    | Ok (hdr, payload) ->
      if Horus_msg.Addr.group_id hdr.T.Frame.h_group <> P.gid then
        t.stats.s_bad <- t.stats.s_bad + 1
      else (
        match P.decode_request payload with
        | Error _ ->
          t.stats.s_bad <- t.stats.s_bad + 1;
          (* A syntactically sound frame carrying garbage still gets a
             clean error reply — clients must never need a timeout to
             learn they sent nonsense. *)
          send t ~dest:src ~req_id:0
            (P.Error { code = P.Bad_request; detail = "undecodable request" })
        | Ok (req_id, req) ->
          t.stats.s_requests <- t.stats.s_requests + 1;
          handle t ~src ~req_id req)

(* The lease sweep: evict expired bindings, deterministically —
   groups in gid order, ranks in rank order. *)
let sweep_now t =
  let now = Engine.now t.engine in
  let gids = Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort compare in
  List.iter
    (fun gid ->
       let g = Hashtbl.find t.groups gid in
       let expired =
         Hashtbl.fold
           (fun rank e acc -> if e.en_expires < now then rank :: acc else acc)
           g.g_entries []
         |> List.sort compare
       in
       List.iter
         (fun rank ->
            Hashtbl.remove g.g_entries rank;
            t.stats.s_evictions <- t.stats.s_evictions + 1;
            notify t gid g ~rank ~addr:None)
         expired)
    gids

let create ?(sweep_period = 0.5) ?(max_lease = 30.0) ~engine backend =
  let t =
    { engine;
      backend;
      max_lease;
      groups = Hashtbl.create 8;
      stats =
        { s_requests = 0; s_replies = 0; s_notifies = 0; s_evictions = 0; s_errors = 0;
          s_bad = 0 };
      sweep = None;
      stopped = false }
  in
  backend.T.Backend.set_rx (fun ~src frame -> rx t ~src frame);
  let rec tick () =
    if not t.stopped then begin
      sweep_now t;
      t.sweep <- Some (Engine.schedule engine ~delay:sweep_period tick)
    end
  in
  t.sweep <- Some (Engine.schedule engine ~delay:sweep_period tick);
  t

let stop t =
  t.stopped <- true;
  (match t.sweep with Some h -> Engine.cancel h | None -> ());
  t.sweep <- None

let addr t = t.backend.T.Backend.local_addr

let stats t = t.stats

let groups t =
  Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort compare

let entries t ~group =
  match Hashtbl.find_opt t.groups group with
  | None -> []
  | Some g -> List.map (fun (r, e) -> (r, e.en_addr, e.en_expires)) (sorted_entries g)

let version t ~group =
  match Hashtbl.find_opt t.groups group with None -> 0 | Some g -> g.g_version

let export_metrics ?(prefix = "dir") t m =
  let c name v = Horus_obs.Metrics.(set_counter (counter m (prefix ^ "." ^ name)) v) in
  c "requests" t.stats.s_requests;
  c "replies" t.stats.s_replies;
  c "notifies" t.stats.s_notifies;
  c "evictions" t.stats.s_evictions;
  c "errors" t.stats.s_errors;
  c "bad" t.stats.s_bad;
  let bindings =
    Hashtbl.fold (fun _ g acc -> acc + Hashtbl.length g.g_entries) t.groups 0
  in
  Horus_obs.Metrics.(set (gauge m (prefix ^ ".bindings")) (float_of_int bindings));
  Horus_obs.Metrics.(
    set (gauge m (prefix ^ ".groups")) (float_of_int (Hashtbl.length t.groups)))
