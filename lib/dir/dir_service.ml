(* The directory service: the rank->address book as a network
   endpoint instead of a static file.

   State is per-group: a version counter, a table of leased bindings
   and a subscriber list. Every mutation (a new or changed binding, an
   unregister, a lease eviction) bumps the group's version and fans a
   Notify frame out to the subscribers in sorted-address order; the
   lease sweep walks groups in sorted-gid order and ranks in sorted
   order, so under virtual time the whole notification stream is a
   deterministic function of the request stream — the property the
   directory soak fingerprints.

   The service owns one backend socket. Requests and replies ride the
   ordinary Frame codec on the reserved directory gid; replies go to
   the datagram's socket source address — the directory is what
   bootstraps the peer book, so it cannot rely on one. *)

module T = Horus_transport
module P = Dir_protocol
module Engine = Horus_sim.Engine

type entry = {
  en_addr : string;
  mutable en_expires : float;
}

type group_state = {
  mutable g_version : int;
  g_entries : (int, entry) Hashtbl.t;  (* rank -> binding *)
  mutable g_subs : string list;        (* subscriber socket addrs, sorted *)
}

type stats = {
  mutable s_requests : int;
  mutable s_replies : int;
  mutable s_notifies : int;
  mutable s_evictions : int;
  mutable s_errors : int;   (* error replies sent *)
  mutable s_bad : int;      (* undecodable frames / messages *)
  mutable s_deltas_out : int;   (* replication deltas streamed (per backup) *)
  mutable s_deltas_in : int;    (* replication deltas applied *)
  mutable s_promotions : int;   (* backup -> primary transitions *)
  mutable s_redirects : int;    (* Not_primary replies sent *)
  mutable s_syncs : int;        (* snapshots served (primary) / requested (backup) *)
}

type role = Primary | Backup

type t = {
  engine : Engine.t;
  backend : T.Backend.t;
  max_lease : float;
  groups : (int, group_state) Hashtbl.t;
  stats : stats;
  mutable sweep : Engine.handle option;
  mutable stopped : bool;
  (* Replication: [replicas] is the full ordered replica address list
     (index 0 = the initial primary, the rest promotion order);
     [others] the peers this replica streams to or hears from. *)
  replicas : string list;
  replica_index : int;
  others : string list;
  promote_after : float;
  mutable role : role;
  mutable epoch : int;          (* primary incarnation counter *)
  mutable repl_seq : int;       (* last delta sent (primary) / applied (backup) *)
  mutable last_primary : float; (* engine time the primary was last heard *)
  mutable syncing : bool;       (* a snapshot request is outstanding *)
}

let group_state t gid =
  match Hashtbl.find_opt t.groups gid with
  | Some g -> g
  | None ->
    let g = { g_version = 0; g_entries = Hashtbl.create 8; g_subs = [] } in
    Hashtbl.replace t.groups gid g;
    g

(* The fresh-eid incarnation rule, applied to the service itself:
   every promotion bumps the epoch, and every frame of the new
   incarnation is stamped with a fresh src eid — peers can always
   order incarnations and discard a stale primary's traffic. *)
let src_eid t = Horus_msg.Addr.endpoint (P.service_eid + t.epoch)

let send t ~dest reply ~req_id =
  t.stats.s_replies <- t.stats.s_replies + 1;
  (match reply with P.Error _ -> t.stats.s_errors <- t.stats.s_errors + 1 | _ -> ());
  t.backend.T.Backend.send ~dest
    (T.Frame.encode ~src:(src_eid t)
       ~group:(Horus_msg.Addr.group P.gid)
       (P.encode_reply ~req_id reply))

let send_req t ~dest req =
  t.backend.T.Backend.send ~dest
    (T.Frame.encode ~src:(src_eid t)
       ~group:(Horus_msg.Addr.group P.gid)
       (P.encode_request ~req_id:0 req))

(* Stream one mutation to every backup. Called after the mutation is
   applied, so [g.g_version] is the post-mutation version the backup
   must mirror. *)
let replicate t ~group g change =
  if t.role = Primary && t.others <> [] then begin
    t.repl_seq <- t.repl_seq + 1;
    List.iter
      (fun dest ->
         t.stats.s_deltas_out <- t.stats.s_deltas_out + 1;
         send_req t ~dest
           (P.Repl_delta
              { epoch = t.epoch; seq = t.repl_seq; group; version = g.g_version;
                change }))
      t.others
  end

(* A binding changed: bump the version and tell the subscribers, in
   sorted-address order. *)
let notify t gid g ~rank ~addr =
  g.g_version <- g.g_version + 1;
  List.iter
    (fun sub ->
       t.stats.s_notifies <- t.stats.s_notifies + 1;
       send t ~dest:sub ~req_id:0
         (P.Notify { group = gid; version = g.g_version; rank; addr }))
    g.g_subs

let sorted_entries g =
  Hashtbl.fold (fun rank e acc -> (rank, e) :: acc) g.g_entries []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let handle t ~src ~req_id req =
  match req with
  | P.Register { group; rank; addr; lease } ->
    let lease = Float.min (Float.max lease 0.001) t.max_lease in
    let g = group_state t group in
    let expires = Engine.now t.engine +. lease in
    let changed =
      match Hashtbl.find_opt g.g_entries rank with
      | Some e when e.en_addr = addr ->
        e.en_expires <- Float.max e.en_expires expires;
        false
      | _ ->
        Hashtbl.replace g.g_entries rank { en_addr = addr; en_expires = expires };
        true
    in
    if changed then notify t group g ~rank ~addr:(Some addr);
    let e = Hashtbl.find g.g_entries rank in
    replicate t ~group g
      (P.Ch_bind
         { rank; addr; remaining = e.en_expires -. Engine.now t.engine });
    send t ~dest:src ~req_id
      (P.Registered { group; rank; version = g.g_version; expires })
  | P.Renew { group; rank; lease } -> (
    let lease = Float.min (Float.max lease 0.001) t.max_lease in
    match Hashtbl.find_opt t.groups group with
    | None ->
      send t ~dest:src ~req_id
        (P.Error { code = P.Unknown_group; detail = Printf.sprintf "group %d" group })
    | Some g -> (
      match Hashtbl.find_opt g.g_entries rank with
      | None ->
        send t ~dest:src ~req_id
          (P.Error
             { code = P.Unknown_rank; detail = Printf.sprintf "g=%d r=%d" group rank })
      | Some e ->
        e.en_expires <- Float.max e.en_expires (Engine.now t.engine +. lease);
        replicate t ~group g
          (P.Ch_bind
             { rank; addr = e.en_addr;
               remaining = e.en_expires -. Engine.now t.engine });
        send t ~dest:src ~req_id
          (P.Registered { group; rank; version = g.g_version; expires = e.en_expires })))
  | P.Unregister { group; rank } -> (
    match Hashtbl.find_opt t.groups group with
    | None ->
      send t ~dest:src ~req_id
        (P.Error { code = P.Unknown_group; detail = Printf.sprintf "group %d" group })
    | Some g ->
      if Hashtbl.mem g.g_entries rank then begin
        Hashtbl.remove g.g_entries rank;
        notify t group g ~rank ~addr:None;
        replicate t ~group g (P.Ch_remove rank)
      end;
      send t ~dest:src ~req_id P.Done)
  | P.Lookup { group; rank } -> (
    match Hashtbl.find_opt t.groups group with
    | None ->
      send t ~dest:src ~req_id
        (P.Error { code = P.Unknown_group; detail = Printf.sprintf "group %d" group })
    | Some g -> (
      match Hashtbl.find_opt g.g_entries rank with
      | Some e -> send t ~dest:src ~req_id (P.Found { group; rank; addr = e.en_addr })
      | None ->
        send t ~dest:src ~req_id
          (P.Error
             { code = P.Unknown_rank; detail = Printf.sprintf "g=%d r=%d" group rank })))
  | P.List_group group -> (
    match Hashtbl.find_opt t.groups group with
    | None ->
      send t ~dest:src ~req_id
        (P.Error { code = P.Unknown_group; detail = Printf.sprintf "group %d" group })
    | Some g ->
      let entries = List.map (fun (r, e) -> (r, e.en_addr)) (sorted_entries g) in
      send t ~dest:src ~req_id (P.Entries { group; version = g.g_version; entries }))
  | P.List_groups ->
    let gids =
      Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort compare
    in
    send t ~dest:src ~req_id (P.Groups gids)
  | P.Subscribe group ->
    let g = group_state t group in
    if not (List.mem src g.g_subs) then begin
      g.g_subs <- List.sort compare (src :: g.g_subs);
      replicate t ~group g (P.Ch_sub src)
    end;
    send t ~dest:src ~req_id (P.Subscribed { group; version = g.g_version })
  | P.Unsubscribe group ->
    (match Hashtbl.find_opt t.groups group with
     | Some g ->
       if List.mem src g.g_subs then begin
         g.g_subs <- List.filter (fun a -> a <> src) g.g_subs;
         replicate t ~group g (P.Ch_unsub src)
       end
     | None -> ());
    send t ~dest:src ~req_id P.Done
  | P.Repl_delta _ | P.Repl_heartbeat _ | P.Repl_sync _ | P.Repl_snapshot _ ->
    (* replication traffic is routed to [handle_repl] before [handle] *)
    ()

(* -- Replication ----------------------------------------------------- *)

let snapshot_groups t =
  let now = Engine.now t.engine in
  Hashtbl.fold (fun gid g acc -> (gid, g) :: acc) t.groups []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (gid, g) ->
         { P.sg_group = gid;
           sg_version = g.g_version;
           sg_entries =
             List.map
               (fun (r, e) -> (r, e.en_addr, e.en_expires -. now))
               (sorted_entries g);
           sg_subs = g.g_subs })

let heartbeat t =
  List.iter
    (fun dest -> send_req t ~dest (P.Repl_heartbeat { epoch = t.epoch; seq = t.repl_seq }))
    t.others

(* A message from a primary incarnation at least as fresh as anything
   we have seen: refresh the silence clock and adopt the epoch. A
   promoted replica that hears a strictly fresher incarnation steps
   back down — the deterministic stagger makes this a safety net, not
   a protocol round. *)
let heard_primary t epoch =
  t.last_primary <- Engine.now t.engine;
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    if t.role = Primary then t.role <- Backup
  end

let request_sync t ~dest =
  if not t.syncing then begin
    t.syncing <- true;
    t.stats.s_syncs <- t.stats.s_syncs + 1;
    send_req t ~dest (P.Repl_sync { from_seq = t.repl_seq })
  end

let apply_change t ~group ~version change =
  let g = group_state t group in
  (match change with
   | P.Ch_bind { rank; addr; remaining } ->
     Hashtbl.replace g.g_entries rank
       { en_addr = addr; en_expires = Engine.now t.engine +. remaining }
   | P.Ch_remove rank -> Hashtbl.remove g.g_entries rank
   | P.Ch_sub a ->
     if not (List.mem a g.g_subs) then g.g_subs <- List.sort compare (a :: g.g_subs)
   | P.Ch_unsub a -> g.g_subs <- List.filter (fun x -> x <> a) g.g_subs);
  (* mirror the primary's version exactly: a promoted backup resumes
     the change counter where the primary left it *)
  g.g_version <- version

let handle_repl t ~src req =
  match req with
  | P.Repl_delta { epoch; seq; group; version; change } ->
    if epoch >= t.epoch then begin
      heard_primary t epoch;
      if t.role = Backup then begin
        if seq <= t.repl_seq then ()  (* duplicate of an applied delta *)
        else if seq = t.repl_seq + 1 && not t.syncing then begin
          t.repl_seq <- seq;
          t.stats.s_deltas_in <- t.stats.s_deltas_in + 1;
          apply_change t ~group ~version change
        end
        else request_sync t ~dest:src
      end
    end
  | P.Repl_heartbeat { epoch; seq } ->
    if epoch >= t.epoch then begin
      heard_primary t epoch;
      if t.role = Backup && seq > t.repl_seq then request_sync t ~dest:src
    end
  | P.Repl_sync _ ->
    if t.role = Primary then begin
      t.stats.s_syncs <- t.stats.s_syncs + 1;
      send_req t ~dest:src
        (P.Repl_snapshot
           { epoch = t.epoch; seq = t.repl_seq; groups = snapshot_groups t })
    end
  | P.Repl_snapshot { epoch; seq; groups } ->
    if epoch >= t.epoch then begin
      heard_primary t epoch;
      if t.role = Backup then begin
        Hashtbl.reset t.groups;
        List.iter
          (fun sg ->
             let g = group_state t sg.P.sg_group in
             g.g_version <- sg.P.sg_version;
             g.g_subs <- sg.P.sg_subs;
             List.iter
               (fun (rank, addr, remaining) ->
                  Hashtbl.replace g.g_entries rank
                    { en_addr = addr;
                      en_expires = Engine.now t.engine +. remaining })
               sg.P.sg_entries)
          groups;
        t.repl_seq <- seq;
        t.syncing <- false
      end
    end
  | _ -> ()

let promote t =
  t.role <- Primary;
  t.epoch <- t.epoch + 1;
  t.stats.s_promotions <- t.stats.s_promotions + 1;
  t.syncing <- false;
  (* announce the fresh incarnation at once, so replicas further down
     the promotion order stand down before their own silence threshold *)
  heartbeat t


let rx t ~src frame =
  if not t.stopped then
    match T.Frame.decode frame with
    | Error _ ->
      t.backend.T.Backend.stats.T.Backend.bad_frame <-
        t.backend.T.Backend.stats.T.Backend.bad_frame + 1
    | Ok (hdr, payload) ->
      if Horus_msg.Addr.group_id hdr.T.Frame.h_group <> P.gid then
        t.stats.s_bad <- t.stats.s_bad + 1
      else (
        match P.decode_request payload with
        | Error _ ->
          t.stats.s_bad <- t.stats.s_bad + 1;
          (* A syntactically sound frame carrying garbage still gets a
             clean error reply — clients must never need a timeout to
             learn they sent nonsense. *)
          send t ~dest:src ~req_id:0
            (P.Error { code = P.Bad_request; detail = "undecodable request" })
        | Ok (req_id, req) -> (
          match req with
          | P.Repl_delta _ | P.Repl_heartbeat _ | P.Repl_sync _ | P.Repl_snapshot _ ->
            handle_repl t ~src req
          | _ when t.role = Backup ->
            (* Backups never answer client traffic with state — a reply
               from a stale replica would fork the version stream. The
               typed redirect tells the client to try the next replica
               immediately, instead of burning its retry budget. *)
            t.stats.s_redirects <- t.stats.s_redirects + 1;
            send t ~dest:src ~req_id
              (P.Error
                 { code = P.Not_primary;
                   detail =
                     Printf.sprintf "replica %d (backup, epoch %d)"
                       t.replica_index t.epoch })
          | _ ->
            t.stats.s_requests <- t.stats.s_requests + 1;
            handle t ~src ~req_id req))

(* The lease sweep: evict expired bindings, deterministically —
   groups in gid order, ranks in rank order. *)
let sweep_now t =
  let now = Engine.now t.engine in
  let gids = Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort compare in
  List.iter
    (fun gid ->
       let g = Hashtbl.find t.groups gid in
       let expired =
         Hashtbl.fold
           (fun rank e acc -> if e.en_expires < now then rank :: acc else acc)
           g.g_entries []
         |> List.sort compare
       in
       List.iter
         (fun rank ->
            Hashtbl.remove g.g_entries rank;
            if Sys.getenv_opt "HORUS_DIR_DEBUG" <> None then
              Printf.eprintf "[dir %d] t=%.3f evict gid=%d rank=%d\n%!"
                t.replica_index now gid rank;
            t.stats.s_evictions <- t.stats.s_evictions + 1;
            notify t gid g ~rank ~addr:None;
            replicate t ~group:gid g (P.Ch_remove rank))
         expired)
    gids

let create ?(sweep_period = 0.5) ?(max_lease = 30.0) ?(replicas = [])
    ?(replica_index = 0) ?(promote_after = 1.5) ~engine backend =
  if replicas <> [] && (replica_index < 0 || replica_index >= List.length replicas)
  then invalid_arg "Dir_service: replica_index out of range";
  if promote_after <= 0.0 then invalid_arg "Dir_service: promote_after must be positive";
  let others = List.filteri (fun i _ -> i <> replica_index) replicas in
  let t =
    { engine;
      backend;
      max_lease;
      groups = Hashtbl.create 8;
      stats =
        { s_requests = 0; s_replies = 0; s_notifies = 0; s_evictions = 0; s_errors = 0;
          s_bad = 0; s_deltas_out = 0; s_deltas_in = 0; s_promotions = 0;
          s_redirects = 0; s_syncs = 0 };
      sweep = None;
      stopped = false;
      replicas;
      replica_index;
      others;
      promote_after;
      role = (if replica_index = 0 then Primary else Backup);
      epoch = 0;
      repl_seq = 0;
      last_primary = Engine.now engine;
      syncing = false }
  in
  backend.T.Backend.set_rx (fun ~src frame -> rx t ~src frame);
  (* One periodic tick per replica: the primary sweeps leases and
     heartbeats its backups; a backup watches the silence clock and
     promotes itself once the primary has been quiet for its slot in
     the promotion order — replica [i] waits [i * promote_after], so
     at most one replica crosses its threshold per silence window and
     the failover order is deterministic without any election round. *)
  let rec tick () =
    if not t.stopped then begin
      (match t.role with
       | Primary ->
         sweep_now t;
         heartbeat t
       | Backup ->
         let silence = Engine.now engine -. t.last_primary in
         if silence > t.promote_after *. float_of_int t.replica_index then
           promote t);
      t.sweep <- Some (Engine.schedule engine ~delay:sweep_period tick)
    end
  in
  t.sweep <- Some (Engine.schedule engine ~delay:sweep_period tick);
  t

let stop t =
  t.stopped <- true;
  (match t.sweep with Some h -> Engine.cancel h | None -> ());
  t.sweep <- None

let addr t = t.backend.T.Backend.local_addr

let stats t = t.stats

let role t = t.role

let role_string t = match t.role with Primary -> "primary" | Backup -> "backup"

let epoch t = t.epoch

let replica_index t = t.replica_index

let groups t =
  Hashtbl.fold (fun gid _ acc -> gid :: acc) t.groups [] |> List.sort compare

let entries t ~group =
  match Hashtbl.find_opt t.groups group with
  | None -> []
  | Some g -> List.map (fun (r, e) -> (r, e.en_addr, e.en_expires)) (sorted_entries g)

let version t ~group =
  match Hashtbl.find_opt t.groups group with None -> 0 | Some g -> g.g_version

let export_metrics ?(prefix = "dir") t m =
  let c name v = Horus_obs.Metrics.(set_counter (counter m (prefix ^ "." ^ name)) v) in
  c "requests" t.stats.s_requests;
  c "replies" t.stats.s_replies;
  c "notifies" t.stats.s_notifies;
  c "evictions" t.stats.s_evictions;
  c "errors" t.stats.s_errors;
  c "bad" t.stats.s_bad;
  c "repl.deltas_out" t.stats.s_deltas_out;
  c "repl.deltas_in" t.stats.s_deltas_in;
  c "promotions" t.stats.s_promotions;
  c "redirects" t.stats.s_redirects;
  c "syncs" t.stats.s_syncs;
  let g name v = Horus_obs.Metrics.(set (gauge m (prefix ^ "." ^ name)) v) in
  g "role" (match t.role with Primary -> 1.0 | Backup -> 0.0);
  g "epoch" (float_of_int t.epoch);
  g "replica" (float_of_int t.replica_index);
  let bindings =
    Hashtbl.fold (fun _ g acc -> acc + Hashtbl.length g.g_entries) t.groups 0
  in
  Horus_obs.Metrics.(set (gauge m (prefix ^ ".bindings")) (float_of_int bindings));
  Horus_obs.Metrics.(
    set (gauge m (prefix ^ ".groups")) (float_of_int (Hashtbl.length t.groups)))
