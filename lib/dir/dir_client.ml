(* The directory client: request/reply with timeout and retry over a
   connectionless socket, plus the change-notification feed.

   The client is transport-shape-agnostic: it is constructed from an
   [xmit] thunk (raw frame bytes towards the server) and exposes its
   receive path as a function, so it runs equally over a dedicated
   socket (wire [rx_frame] into the backend's rx) or a shared
   Transport_link mux (register [rx] as the raw route for the
   directory gid). All timers ride the engine, so requests are
   deterministic under virtual time and real under a wall-clock
   driver. *)

module T = Horus_transport
module P = Dir_protocol
module Engine = Horus_sim.Engine

type pending = {
  p_frame : Bytes.t;
  mutable p_attempts : int;
  mutable p_timer : Engine.handle option;
  p_k : (P.reply, string) result -> unit;
}

type stats = {
  mutable c_sent : int;
  mutable c_retries : int;
  mutable c_timeouts : int;
  mutable c_replies : int;
  mutable c_notifies : int;
}

type t = {
  engine : Engine.t;
  eid : int;
  xmit : Bytes.t -> unit;
  timeout : float;
  retries : int;
  pending : (int, pending) Hashtbl.t;
  mutable next_req : int;
  mutable on_notify :
    (group:int -> version:int -> rank:int -> addr:string option -> unit) list;
  stats : stats;
}

let create ?(timeout = 0.25) ?(retries = 3) ?(eid = 0) ~engine xmit =
  { engine;
    eid;
    xmit;
    timeout;
    retries;
    pending = Hashtbl.create 8;
    next_req = 1;
    on_notify = [];
    stats = { c_sent = 0; c_retries = 0; c_timeouts = 0; c_replies = 0; c_notifies = 0 } }

let on_notify t f = t.on_notify <- t.on_notify @ [ f ]

let frame_of t ~req_id req =
  T.Frame.encode
    ~src:(Horus_msg.Addr.endpoint t.eid)
    ~group:(Horus_msg.Addr.group P.gid)
    (P.encode_request ~req_id req)

let request t req k =
  let req_id = t.next_req in
  t.next_req <- t.next_req + 1;
  let p = { p_frame = frame_of t ~req_id req; p_attempts = 0; p_timer = None; p_k = k } in
  Hashtbl.replace t.pending req_id p;
  let rec fire () =
    p.p_attempts <- p.p_attempts + 1;
    t.stats.c_sent <- t.stats.c_sent + 1;
    if p.p_attempts > 1 then t.stats.c_retries <- t.stats.c_retries + 1;
    t.xmit p.p_frame;
    p.p_timer <-
      Some
        (Engine.schedule t.engine ~delay:t.timeout (fun () ->
             if Hashtbl.mem t.pending req_id then
               if p.p_attempts <= t.retries then fire ()
               else begin
                 Hashtbl.remove t.pending req_id;
                 t.stats.c_timeouts <- t.stats.c_timeouts + 1;
                 k (Error "directory request timed out")
               end))
  in
  fire ()

let rx t ~src:_ payload =
  match P.decode_reply payload with
  | Error _ -> ()
  | Ok (req_id, reply) -> (
    match reply with
    | P.Notify { group; version; rank; addr } ->
      t.stats.c_notifies <- t.stats.c_notifies + 1;
      List.iter (fun f -> f ~group ~version ~rank ~addr) t.on_notify
    | _ -> (
      match Hashtbl.find_opt t.pending req_id with
      | None -> ()  (* late duplicate of an answered request *)
      | Some p ->
        Hashtbl.remove t.pending req_id;
        (match p.p_timer with Some h -> Engine.cancel h | None -> ());
        t.stats.c_replies <- t.stats.c_replies + 1;
        p.p_k (Ok reply)))

let rx_frame t ~src frame =
  match T.Frame.decode frame with
  | Error _ -> ()
  | Ok (hdr, payload) ->
    if Horus_msg.Addr.group_id hdr.T.Frame.h_group = P.gid then rx t ~src payload

let stats t = t.stats

let err_of = function
  | P.Error { code; detail } ->
    Printf.sprintf "%s (%s)" (P.error_code_to_string code) detail
  | r -> Format.asprintf "unexpected directory reply: %a" P.pp_reply r

(* Typed wrappers: each maps the expected reply variant, turning a
   service-side Error frame into a clean [Error] result — no caller
   ever learns about an unknown rank via a timeout. *)

let register t ~group ~rank ~addr ~lease k =
  request t (P.Register { group; rank; addr; lease }) (function
      | Error e -> k (Error e)
      | Ok (P.Registered { version; expires; _ }) -> k (Ok (version, expires))
      | Ok r -> k (Error (err_of r)))

let renew t ~group ~rank ~lease k =
  request t (P.Renew { group; rank; lease }) (function
      | Error e -> k (Error e)
      | Ok (P.Registered { expires; _ }) -> k (Ok expires)
      | Ok r -> k (Error (err_of r)))

let unregister t ~group ~rank k =
  request t (P.Unregister { group; rank }) (function
      | Error e -> k (Error e)
      | Ok P.Done -> k (Ok ())
      | Ok r -> k (Error (err_of r)))

let lookup t ~group ~rank k =
  request t (P.Lookup { group; rank }) (function
      | Error e -> k (Error e)
      | Ok (P.Found { addr; _ }) -> k (Ok addr)
      | Ok r -> k (Error (err_of r)))

let list_group t ~group k =
  request t (P.List_group group) (function
      | Error e -> k (Error e)
      | Ok (P.Entries { version; entries; _ }) -> k (Ok (version, entries))
      | Ok r -> k (Error (err_of r)))

let list_groups t k =
  request t P.List_groups (function
      | Error e -> k (Error e)
      | Ok (P.Groups gids) -> k (Ok gids)
      | Ok r -> k (Error (err_of r)))

let subscribe t ~group k =
  request t (P.Subscribe group) (function
      | Error e -> k (Error e)
      | Ok (P.Subscribed { version; _ }) -> k (Ok version)
      | Ok r -> k (Error (err_of r)))

let unsubscribe t ~group k =
  request t (P.Unsubscribe group) (function
      | Error e -> k (Error e)
      | Ok P.Done -> k (Ok ())
      | Ok r -> k (Error (err_of r)))

(* Keep a binding alive: register now, renew at half-lease cadence,
   unregister on stop. Renewal failures re-register from scratch (the
   lease may have lapsed across a partition). *)
let auto_renew t ~group ~rank ~addr ~lease =
  let stopped = ref false in
  let timer = ref None in
  let rec arm () =
    if not !stopped then
      timer :=
        Some
          (Engine.schedule t.engine ~delay:(lease /. 2.0) (fun () ->
               if not !stopped then
                 renew t ~group ~rank ~lease (function
                     | Ok _ -> arm ()
                     | Error _ ->
                       register t ~group ~rank ~addr ~lease (fun _ -> arm ()))))
  in
  register t ~group ~rank ~addr ~lease (fun _ -> arm ());
  fun () ->
    if not !stopped then begin
      stopped := true;
      (match !timer with Some h -> Engine.cancel h | None -> ());
      unregister t ~group ~rank (fun _ -> ())
    end

let peers_of entries =
  let p = T.Peers.create () in
  List.iter (fun (rank, addr) -> T.Peers.add p ~rank ~addr) entries;
  p
