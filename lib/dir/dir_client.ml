(* The directory client: request/reply with timeout and retry over a
   connectionless socket, plus the change-notification feed.

   The client is transport-shape-agnostic: it is constructed from an
   [xmit] thunk (raw frame bytes towards the server) and exposes its
   receive path as a function, so it runs equally over a dedicated
   socket (wire [rx_frame] into the backend's rx) or a shared
   Transport_link mux (register [rx] as the raw route for the
   directory gid). All timers ride the engine, so requests are
   deterministic under virtual time and real under a wall-clock
   driver.

   Failover: the client holds one xmit per directory replica, each
   with its own RTT estimator (the NAK layer's Rto machinery —
   srtt + 4*rttvar with capped exponential backoff, Karn-sampled).
   A request walks its current replica through the per-replica retry
   budget with backed-off resends, then fails over to the next
   replica; a [Not_primary] redirect from a backup advances
   immediately instead of burning the budget. The replica that last
   answered is sticky, so after one paid failover every subsequent
   request goes straight to the live primary. *)

module T = Horus_transport
module P = Dir_protocol
module Engine = Horus_sim.Engine
module Rto = Horus_layers.Nak.Rto

type replica = {
  r_xmit : Bytes.t -> unit;
  r_rto : Rto.t;
}

type pending = {
  p_frame : Bytes.t;
  mutable p_replica : int;   (* replica currently targeted *)
  mutable p_attempts : int;  (* sends towards the current replica *)
  mutable p_total : int;     (* sends across all replicas *)
  mutable p_sent_at : float; (* engine time of the last send *)
  mutable p_timer : Engine.handle option;
  p_k : (P.reply, string) result -> unit;
}

type stats = {
  mutable c_sent : int;
  mutable c_retries : int;
  mutable c_timeouts : int;
  mutable c_replies : int;
  mutable c_notifies : int;
  mutable c_failovers : int;  (* replica advances after an exhausted budget *)
  mutable c_redirects : int;  (* Not_primary redirects honoured *)
}

type t = {
  engine : Engine.t;
  eid : int;
  replicas : replica array;
  mutable current : int;      (* sticky: the replica that last answered *)
  timeout : float;
  retries : int;
  pending : (int, pending) Hashtbl.t;
  mutable next_req : int;
  mutable on_notify :
    (group:int -> version:int -> rank:int -> addr:string option -> unit) list;
  stats : stats;
}

let create ?(timeout = 0.25) ?(retries = 3) ?(eid = 0) ?(backups = []) ~engine xmit =
  let replica x =
    { r_xmit = x;
      r_rto = Rto.create ~init:timeout ~min_rto:(timeout /. 8.0)
          ~max_rto:(timeout *. 8.0) () }
  in
  { engine;
    eid;
    replicas = Array.of_list (List.map replica (xmit :: backups));
    current = 0;
    timeout;
    retries;
    pending = Hashtbl.create 8;
    next_req = 1;
    on_notify = [];
    stats =
      { c_sent = 0; c_retries = 0; c_timeouts = 0; c_replies = 0; c_notifies = 0;
        c_failovers = 0; c_redirects = 0 } }

let replicas t = Array.length t.replicas

let on_notify t f = t.on_notify <- t.on_notify @ [ f ]

let frame_of t ~req_id req =
  T.Frame.encode
    ~src:(Horus_msg.Addr.endpoint t.eid)
    ~group:(Horus_msg.Addr.group P.gid)
    (P.encode_request ~req_id req)

(* The whole-request send budget: a full per-replica retry budget
   against every replica once around the ring. *)
let budget t = (t.retries + 1) * Array.length t.replicas

let advance p n = p.p_replica <- (p.p_replica + 1) mod n; p.p_attempts <- 0

let fail t req_id p =
  Hashtbl.remove t.pending req_id;
  t.stats.c_timeouts <- t.stats.c_timeouts + 1;
  p.p_k (Error "directory request timed out")

let rec fire t req_id p =
  let r = t.replicas.(p.p_replica) in
  p.p_attempts <- p.p_attempts + 1;
  p.p_total <- p.p_total + 1;
  t.stats.c_sent <- t.stats.c_sent + 1;
  if p.p_total > 1 then t.stats.c_retries <- t.stats.c_retries + 1;
  p.p_sent_at <- Engine.now t.engine;
  r.r_xmit p.p_frame;
  (* Resend pacing is this replica's estimated RTO, doubled per local
     attempt — an unreachable replica is abandoned after
     [retries + 1] backed-off sends, not hammered on a fixed clock. *)
  let delay = Rto.backoff r.r_rto ~attempt:(p.p_attempts - 1) in
  p.p_timer <-
    Some
      (Engine.schedule t.engine ~delay (fun () ->
           if Hashtbl.mem t.pending req_id then
             if p.p_total >= budget t then fail t req_id p
             else begin
               if p.p_attempts > t.retries then begin
                 t.stats.c_failovers <- t.stats.c_failovers + 1;
                 advance p (Array.length t.replicas)
               end;
               fire t req_id p
             end))

let request t req k =
  let req_id = t.next_req in
  t.next_req <- t.next_req + 1;
  let p =
    { p_frame = frame_of t ~req_id req;
      p_replica = t.current;
      p_attempts = 0;
      p_total = 0;
      p_sent_at = 0.0;
      p_timer = None;
      p_k = k }
  in
  Hashtbl.replace t.pending req_id p;
  fire t req_id p

let rx t ~src:_ payload =
  match P.decode_reply payload with
  | Error _ -> ()
  | Ok (req_id, reply) -> (
    match reply with
    | P.Notify { group; version; rank; addr } ->
      t.stats.c_notifies <- t.stats.c_notifies + 1;
      List.iter (fun f -> f ~group ~version ~rank ~addr) t.on_notify
    | _ -> (
      match Hashtbl.find_opt t.pending req_id with
      | None -> ()  (* late duplicate of an answered request *)
      | Some p -> (
        match reply with
        | P.Error { code = P.Not_primary; _ } when Array.length t.replicas > 1 ->
          (* A backup redirect: hop to the next replica right away
             instead of waiting out the resend timer. *)
          t.stats.c_redirects <- t.stats.c_redirects + 1;
          (match p.p_timer with Some h -> Engine.cancel h | None -> ());
          p.p_timer <- None;
          if p.p_total >= budget t then fail t req_id p
          else begin
            advance p (Array.length t.replicas);
            fire t req_id p
          end
        | _ ->
          Hashtbl.remove t.pending req_id;
          (match p.p_timer with Some h -> Engine.cancel h | None -> ());
          t.stats.c_replies <- t.stats.c_replies + 1;
          (* Karn's rule: only a first-attempt exchange is an
             unambiguous RTT sample for the answering replica. *)
          if p.p_attempts = 1 then
            Rto.observe t.replicas.(p.p_replica).r_rto
              (Engine.now t.engine -. p.p_sent_at);
          t.current <- p.p_replica;
          p.p_k (Ok reply))))

let rx_frame t ~src frame =
  match T.Frame.decode frame with
  | Error _ -> ()
  | Ok (hdr, payload) ->
    if Horus_msg.Addr.group_id hdr.T.Frame.h_group = P.gid then rx t ~src payload

let stats t = t.stats

let err_of = function
  | P.Error { code; detail } ->
    Printf.sprintf "%s (%s)" (P.error_code_to_string code) detail
  | r -> Format.asprintf "unexpected directory reply: %a" P.pp_reply r

(* Typed wrappers: each maps the expected reply variant, turning a
   service-side Error frame into a clean [Error] result — no caller
   ever learns about an unknown rank via a timeout. *)

let register t ~group ~rank ~addr ~lease k =
  request t (P.Register { group; rank; addr; lease }) (function
      | Error e -> k (Error e)
      | Ok (P.Registered { version; expires; _ }) -> k (Ok (version, expires))
      | Ok r -> k (Error (err_of r)))

let renew t ~group ~rank ~lease k =
  request t (P.Renew { group; rank; lease }) (function
      | Error e -> k (Error e)
      | Ok (P.Registered { expires; _ }) -> k (Ok expires)
      | Ok r -> k (Error (err_of r)))

let unregister t ~group ~rank k =
  request t (P.Unregister { group; rank }) (function
      | Error e -> k (Error e)
      | Ok P.Done -> k (Ok ())
      | Ok r -> k (Error (err_of r)))

let lookup t ~group ~rank k =
  request t (P.Lookup { group; rank }) (function
      | Error e -> k (Error e)
      | Ok (P.Found { addr; _ }) -> k (Ok addr)
      | Ok r -> k (Error (err_of r)))

let list_group t ~group k =
  request t (P.List_group group) (function
      | Error e -> k (Error e)
      | Ok (P.Entries { version; entries; _ }) -> k (Ok (version, entries))
      | Ok r -> k (Error (err_of r)))

let list_groups t k =
  request t P.List_groups (function
      | Error e -> k (Error e)
      | Ok (P.Groups gids) -> k (Ok gids)
      | Ok r -> k (Error (err_of r)))

let subscribe t ~group k =
  request t (P.Subscribe group) (function
      | Error e -> k (Error e)
      | Ok (P.Subscribed { version; _ }) -> k (Ok version)
      | Ok r -> k (Error (err_of r)))

let unsubscribe t ~group k =
  request t (P.Unsubscribe group) (function
      | Error e -> k (Error e)
      | Ok P.Done -> k (Ok ())
      | Ok r -> k (Error (err_of r)))

(* Keep a binding alive: register now, renew at half-lease cadence,
   unregister on release. Renewal failures re-register from scratch
   (the lease may have lapsed across a partition or a failover).
   [abandon] stops the cadence WITHOUT unregistering — the ungraceful
   path: a crashed member's binding must lapse by lease expiry, never
   by a polite goodbye it did not live to send. *)

type renewal = {
  rn_t : t;
  rn_group : int;
  rn_rank : int;
  mutable rn_stopped : bool;
  mutable rn_timer : Engine.handle option;
}

let keepalive t ~group ~rank ~addr ~lease =
  let rn = { rn_t = t; rn_group = group; rn_rank = rank; rn_stopped = false;
             rn_timer = None } in
  let rec arm () =
    if not rn.rn_stopped then
      rn.rn_timer <-
        Some
          (Engine.schedule t.engine ~delay:(lease /. 2.0) (fun () ->
               if not rn.rn_stopped then
                 renew t ~group ~rank ~lease (function
                     | Ok _ -> arm ()
                     | Error _ ->
                       register t ~group ~rank ~addr ~lease (fun _ -> arm ()))))
  in
  register t ~group ~rank ~addr ~lease (fun _ -> arm ());
  rn

let abandon rn =
  if not rn.rn_stopped then begin
    rn.rn_stopped <- true;
    (match rn.rn_timer with Some h -> Engine.cancel h | None -> ());
    rn.rn_timer <- None
  end

let release rn =
  if not rn.rn_stopped then begin
    abandon rn;
    unregister rn.rn_t ~group:rn.rn_group ~rank:rn.rn_rank (fun _ -> ())
  end

let auto_renew t ~group ~rank ~addr ~lease =
  let rn = keepalive t ~group ~rank ~addr ~lease in
  fun () -> release rn

let peers_of entries =
  let p = T.Peers.create () in
  List.iter (fun (rank, addr) -> T.Peers.add p ~rank ~addr) entries;
  p

(* Mirror client-side request-path counters into the obs registry, so
   failover cost shows up in metrics snapshots and soak fingerprints.
   The summed form serves harnesses with one client per socket: the
   section reads as one logical client. *)
let export_metrics_sum ?(prefix = "dir.client") ts m =
  let c name f =
    Horus_obs.Metrics.(
      set_counter
        (counter m (prefix ^ "." ^ name))
        (List.fold_left (fun acc t -> acc + f t.stats) 0 ts))
  in
  c "sent" (fun s -> s.c_sent);
  c "retries" (fun s -> s.c_retries);
  c "timeouts" (fun s -> s.c_timeouts);
  c "replies" (fun s -> s.c_replies);
  c "notifies" (fun s -> s.c_notifies);
  c "failovers" (fun s -> s.c_failovers);
  c "redirects" (fun s -> s.c_redirects)

let export_metrics ?prefix t m = export_metrics_sum ?prefix [ t ] m
