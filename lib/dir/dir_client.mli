(** The directory client: request/reply with timeout and retry, typed
    wrappers per operation, and the change-notification feed.

    Transport-shape-agnostic: built from an [xmit] thunk (raw frame
    bytes towards the server); wire {!rx_frame} into a dedicated
    backend's rx, or register {!rx} as a shared mux's raw route for
    {!Dir_protocol.gid}. Timers ride the engine, so the client is
    deterministic under virtual time. *)

type t

val create :
  ?timeout:float ->
  ?retries:int ->
  ?eid:int ->
  engine:Horus_sim.Engine.t ->
  (Bytes.t -> unit) ->
  t
(** [create ~engine xmit]: [timeout] (default 0.25 s) per attempt,
    [retries] (default 3) resends before giving up, [eid] the src
    endpoint id stamped on request frames. *)

val rx : t -> src:string -> Bytes.t -> unit
(** Feed a frame payload already stripped by a shared demux. *)

val rx_frame : t -> src:string -> Bytes.t -> unit
(** Feed a raw datagram: decodes the frame, ignores non-directory
    gids. *)

val on_notify :
  t -> (group:int -> version:int -> rank:int -> addr:string option -> unit) -> unit
(** Change feed (requires a {!subscribe}); [addr = None] means the
    binding was removed (unregister or lease eviction). *)

(** {1 Operations}

    Every callback fires exactly once: with the typed result, a
    service-side error ([Error "unknown-rank (...)"] and friends), or
    [Error "directory request timed out"] after the retry budget. *)

val register :
  t -> group:int -> rank:int -> addr:string -> lease:float ->
  ((int * float, string) result -> unit) -> unit
(** On success: (directory version, lease expiry time). *)

val renew :
  t -> group:int -> rank:int -> lease:float -> ((float, string) result -> unit) -> unit

val unregister :
  t -> group:int -> rank:int -> ((unit, string) result -> unit) -> unit

val lookup :
  t -> group:int -> rank:int -> ((string, string) result -> unit) -> unit

val list_group :
  t -> group:int -> ((int * (int * string) list, string) result -> unit) -> unit
(** On success: (directory version, rank-sorted bindings). *)

val list_groups : t -> ((int list, string) result -> unit) -> unit

val subscribe : t -> group:int -> ((int, string) result -> unit) -> unit

val unsubscribe : t -> group:int -> ((unit, string) result -> unit) -> unit

val auto_renew :
  t -> group:int -> rank:int -> addr:string -> lease:float -> (unit -> unit)
(** Register now, renew at half-lease cadence (re-registering if a
    renewal finds the lease lapsed); the returned thunk stops the
    cadence and unregisters. *)

val peers_of : (int * string) list -> Horus_transport.Peers.t
(** A static peer book from a directory listing — the bridge back
    into {!Horus_transport.Peers}-shaped APIs. *)

type stats = {
  mutable c_sent : int;
  mutable c_retries : int;
  mutable c_timeouts : int;
  mutable c_replies : int;
  mutable c_notifies : int;
}

val stats : t -> stats
