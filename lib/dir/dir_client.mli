(** The directory client: request/reply with timeout and retry, typed
    wrappers per operation, and the change-notification feed.

    Transport-shape-agnostic: built from an [xmit] thunk (raw frame
    bytes towards the server); wire {!rx_frame} into a dedicated
    backend's rx, or register {!rx} as a shared mux's raw route for
    {!Dir_protocol.gid}. Timers ride the engine, so the client is
    deterministic under virtual time.

    With [backups], the client fails over transparently: each replica
    has its own RTT estimator ({!Horus_layers.Nak.Rto}), resends back
    off per replica, an exhausted per-replica budget advances to the
    next replica, and a {!Dir_protocol.Not_primary} redirect advances
    immediately. The replica that last answered is sticky. *)

type t

val create :
  ?timeout:float ->
  ?retries:int ->
  ?eid:int ->
  ?backups:(Bytes.t -> unit) list ->
  engine:Horus_sim.Engine.t ->
  (Bytes.t -> unit) ->
  t
(** [create ~engine xmit]: [timeout] (default 0.25 s) seeds each
    replica's RTO estimator, [retries] (default 3) resends per replica
    before failing over (or giving up on the last), [eid] the src
    endpoint id stamped on request frames, [backups] xmit thunks
    towards the backup replicas in promotion order. *)

val replicas : t -> int
(** Replica count (1 with no backups). *)

val rx : t -> src:string -> Bytes.t -> unit
(** Feed a frame payload already stripped by a shared demux. *)

val rx_frame : t -> src:string -> Bytes.t -> unit
(** Feed a raw datagram: decodes the frame, ignores non-directory
    gids. *)

val on_notify :
  t -> (group:int -> version:int -> rank:int -> addr:string option -> unit) -> unit
(** Change feed (requires a {!subscribe}); [addr = None] means the
    binding was removed (unregister or lease eviction). *)

(** {1 Operations}

    Every callback fires exactly once: with the typed result, a
    service-side error ([Error "unknown-rank (...)"] and friends), or
    [Error "directory request timed out"] after the whole-ring retry
    budget. *)

val register :
  t -> group:int -> rank:int -> addr:string -> lease:float ->
  ((int * float, string) result -> unit) -> unit
(** On success: (directory version, lease expiry time). *)

val renew :
  t -> group:int -> rank:int -> lease:float -> ((float, string) result -> unit) -> unit

val unregister :
  t -> group:int -> rank:int -> ((unit, string) result -> unit) -> unit

val lookup :
  t -> group:int -> rank:int -> ((string, string) result -> unit) -> unit

val list_group :
  t -> group:int -> ((int * (int * string) list, string) result -> unit) -> unit
(** On success: (directory version, rank-sorted bindings). *)

val list_groups : t -> ((int list, string) result -> unit) -> unit

val subscribe : t -> group:int -> ((int, string) result -> unit) -> unit

val unsubscribe : t -> group:int -> ((unit, string) result -> unit) -> unit

(** {1 Lease keepalive} *)

type renewal
(** A live register-and-renew cadence for one binding. *)

val keepalive : t -> group:int -> rank:int -> addr:string -> lease:float -> renewal
(** Register now and renew at half-lease cadence (re-registering if a
    renewal finds the lease lapsed). *)

val release : renewal -> unit
(** Graceful stop: end the cadence and unregister the binding. *)

val abandon : renewal -> unit
(** Ungraceful stop: end the cadence but leave the binding to lapse by
    lease expiry — the crash path, where no goodbye is ever sent. *)

val auto_renew :
  t -> group:int -> rank:int -> addr:string -> lease:float -> (unit -> unit)
(** {!keepalive} with the returned thunk performing {!release}. *)

val peers_of : (int * string) list -> Horus_transport.Peers.t
(** A static peer book from a directory listing — the bridge back
    into {!Horus_transport.Peers}-shaped APIs. *)

type stats = {
  mutable c_sent : int;
  mutable c_retries : int;
  mutable c_timeouts : int;
  mutable c_replies : int;
  mutable c_notifies : int;
  mutable c_failovers : int;  (** replica advances after an exhausted budget *)
  mutable c_redirects : int;  (** [Not_primary] redirects honoured *)
}

val stats : t -> stats

val export_metrics : ?prefix:string -> t -> Horus_obs.Metrics.t -> unit
(** Mirror {!stats} into the registry ([prefix] defaults to
    ["dir.client"]); call at snapshot time. *)

val export_metrics_sum : ?prefix:string -> t list -> Horus_obs.Metrics.t -> unit
(** Like {!export_metrics}, summing over many clients — one logical
    section for a harness with a client per socket. *)
