(* The directory wire protocol: versioned request/reply frames over
   the Backend waist.

   Directory traffic rides the same Frame codec (magic, version, src,
   gid, CRC) as group traffic, on one reserved gid, so it multiplexes
   onto any socket a Transport_link mux already owns — the directory
   is an edge service of the hourglass, not a new waist. Inside the
   frame payload every message carries its own protocol version byte,
   an opcode and a request id, so requests and replies correlate over
   a connectionless socket and the protocol can evolve independently
   of the frame codec.

   Encoding uses the Msg LIFO discipline: fields are pushed in reverse
   pop order, the envelope (req id, opcode, version) last, so decoding
   pops version, opcode, req id, then the fields. *)

open Horus_msg

let gid = 0xD1C7  (* reserved group id for directory traffic *)

let service_eid = 0xD1C7  (* the src endpoint id stamped on service frames *)

let version = 1

(* Replication: one mutation of one group's state, as applied by the
   primary. Leases travel as REMAINING duration, not absolute expiry —
   each replica re-anchors the deadline on its own engine clock, so
   the protocol never assumes replicas share a clock. *)
type change =
  | Ch_bind of { rank : int; addr : string; remaining : float }
  | Ch_remove of int
  | Ch_sub of string
  | Ch_unsub of string

type snapshot_group = {
  sg_group : int;
  sg_version : int;
  sg_entries : (int * string * float) list;  (* rank, addr, remaining lease *)
  sg_subs : string list;
}

type request =
  | Register of { group : int; rank : int; addr : string; lease : float }
  | Renew of { group : int; rank : int; lease : float }
  | Unregister of { group : int; rank : int }
  | Lookup of { group : int; rank : int }
  | List_group of int
  | List_groups
  | Subscribe of int
  | Unsubscribe of int
  (* Primary -> backup replication stream (unacknowledged, req id 0).
     [epoch] is the primary incarnation; [seq] orders the delta stream
     within and across epochs, so a backup detects gaps and asks for a
     snapshot. *)
  | Repl_delta of { epoch : int; seq : int; group : int; version : int; change : change }
  | Repl_heartbeat of { epoch : int; seq : int }
  | Repl_sync of { from_seq : int }  (* backup -> primary: state please *)
  | Repl_snapshot of { epoch : int; seq : int; groups : snapshot_group list }

type error_code = Unknown_group | Unknown_rank | Bad_request | Not_primary

type reply =
  | Registered of { group : int; rank : int; version : int; expires : float }
  | Found of { group : int; rank : int; addr : string }
  | Entries of { group : int; version : int; entries : (int * string) list }
  | Groups of int list
  | Subscribed of { group : int; version : int }
  | Done
  | Notify of { group : int; version : int; rank : int; addr : string option }
  | Error of { code : error_code; detail : string }

(* Opcodes: requests in [1, 0x7f], replies in [0x80, 0xff]. *)
let op_register = 1
let op_renew = 2
let op_unregister = 3
let op_lookup = 4
let op_list_group = 5
let op_list_groups = 6
let op_subscribe = 7
let op_unsubscribe = 8

(* Replication opcodes sit in their own sub-range of the request
   space, so a v1 service that predates replication rejects them as
   unknown requests rather than misparsing them. *)
let op_repl_delta = 0x20
let op_repl_heartbeat = 0x21
let op_repl_sync = 0x22
let op_repl_snapshot = 0x23

let op_registered = 0x81
let op_found = 0x82
let op_entries = 0x83
let op_groups = 0x84
let op_subscribed = 0x85
let op_done = 0x86
let op_notify = 0x87
let op_error = 0x88

let error_code_to_int = function
  | Unknown_group -> 1
  | Unknown_rank -> 2
  | Bad_request -> 3
  | Not_primary -> 4

let error_code_of_int = function
  | 1 -> Some Unknown_group
  | 2 -> Some Unknown_rank
  | 3 -> Some Bad_request
  | 4 -> Some Not_primary
  | _ -> None

let error_code_to_string = function
  | Unknown_group -> "unknown-group"
  | Unknown_rank -> "unknown-rank"
  | Bad_request -> "bad-request"
  | Not_primary -> "not-primary"

(* Leases and deadlines travel as microseconds in an i64: float
   seconds on the API, integers on the wire, so encodings are exact
   and double runs byte-identical. *)
let push_time m f = Msg.push_i64 m (Int64.of_float (f *. 1e6))

let pop_time m = Int64.to_float (Msg.pop_i64 m) /. 1e6

let envelope m ~req_id ~op =
  Msg.push_u32 m req_id;
  Msg.push_u8 m op;
  Msg.push_u8 m version;
  Msg.to_bytes m

let encode_request ~req_id req =
  let m = Msg.empty () in
  let op =
    match req with
    | Register { group; rank; addr; lease } ->
      push_time m lease;
      Msg.push_string m addr;
      Msg.push_u32 m rank;
      Msg.push_u32 m group;
      op_register
    | Renew { group; rank; lease } ->
      push_time m lease;
      Msg.push_u32 m rank;
      Msg.push_u32 m group;
      op_renew
    | Unregister { group; rank } ->
      Msg.push_u32 m rank;
      Msg.push_u32 m group;
      op_unregister
    | Lookup { group; rank } ->
      Msg.push_u32 m rank;
      Msg.push_u32 m group;
      op_lookup
    | List_group group ->
      Msg.push_u32 m group;
      op_list_group
    | List_groups -> op_list_groups
    | Subscribe group ->
      Msg.push_u32 m group;
      op_subscribe
    | Unsubscribe group ->
      Msg.push_u32 m group;
      op_unsubscribe
    | Repl_delta { epoch; seq; group; version; change } ->
      (match change with
       | Ch_bind { rank; addr; remaining } ->
         push_time m remaining;
         Msg.push_string m addr;
         Msg.push_u32 m rank;
         Msg.push_u8 m 1
       | Ch_remove rank ->
         Msg.push_u32 m rank;
         Msg.push_u8 m 2
       | Ch_sub addr ->
         Msg.push_string m addr;
         Msg.push_u8 m 3
       | Ch_unsub addr ->
         Msg.push_string m addr;
         Msg.push_u8 m 4);
      Msg.push_u32 m version;
      Msg.push_u32 m group;
      Msg.push_u32 m seq;
      Msg.push_u32 m epoch;
      op_repl_delta
    | Repl_heartbeat { epoch; seq } ->
      Msg.push_u32 m seq;
      Msg.push_u32 m epoch;
      op_repl_heartbeat
    | Repl_sync { from_seq } ->
      Msg.push_u32 m from_seq;
      op_repl_sync
    | Repl_snapshot { epoch; seq; groups } ->
      List.iter
        (fun sg ->
           List.iter (fun a -> Msg.push_string m a) (List.rev sg.sg_subs);
           Msg.push_u16 m (List.length sg.sg_subs);
           List.iter
             (fun (rank, addr, remaining) ->
                push_time m remaining;
                Msg.push_string m addr;
                Msg.push_u32 m rank)
             (List.rev sg.sg_entries);
           Msg.push_u16 m (List.length sg.sg_entries);
           Msg.push_u32 m sg.sg_version;
           Msg.push_u32 m sg.sg_group)
        (List.rev groups);
      Msg.push_u16 m (List.length groups);
      Msg.push_u32 m seq;
      Msg.push_u32 m epoch;
      op_repl_snapshot
  in
  envelope m ~req_id ~op

let encode_reply ~req_id reply =
  let m = Msg.empty () in
  let op =
    match reply with
    | Registered { group; rank; version; expires } ->
      push_time m expires;
      Msg.push_u32 m version;
      Msg.push_u32 m rank;
      Msg.push_u32 m group;
      op_registered
    | Found { group; rank; addr } ->
      Msg.push_string m addr;
      Msg.push_u32 m rank;
      Msg.push_u32 m group;
      op_found
    | Entries { group; version; entries } ->
      List.iter
        (fun (rank, addr) ->
           Msg.push_string m addr;
           Msg.push_u32 m rank)
        (List.rev entries);
      Msg.push_u16 m (List.length entries);
      Msg.push_u32 m version;
      Msg.push_u32 m group;
      op_entries
    | Groups gids ->
      List.iter (fun g -> Msg.push_u32 m g) (List.rev gids);
      Msg.push_u16 m (List.length gids);
      op_groups
    | Subscribed { group; version } ->
      Msg.push_u32 m version;
      Msg.push_u32 m group;
      op_subscribed
    | Done -> op_done
    | Notify { group; version; rank; addr } ->
      (match addr with
       | Some a ->
         Msg.push_string m a;
         Msg.push_bool m true
       | None -> Msg.push_bool m false);
      Msg.push_u32 m rank;
      Msg.push_u32 m version;
      Msg.push_u32 m group;
      op_notify
    | Error { code; detail } ->
      Msg.push_string m detail;
      Msg.push_u8 m (error_code_to_int code);
      op_error
  in
  envelope m ~req_id ~op

let decode payload k =
  let m = Msg.of_bytes payload in
  match
    let v = Msg.pop_u8 m in
    if v <> version then Result.Error (Printf.sprintf "directory protocol version %d" v)
    else
      let op = Msg.pop_u8 m in
      let req_id = Msg.pop_u32 m in
      k m op req_id
  with
  | exception _ -> Result.Error "truncated directory message"
  | r -> r

let decode_request payload =
  decode payload (fun m op req_id ->
      let req =
        match op with
        | o when o = op_register ->
          let group = Msg.pop_u32 m in
          let rank = Msg.pop_u32 m in
          let addr = Msg.pop_string m in
          let lease = pop_time m in
          Some (Register { group; rank; addr; lease })
        | o when o = op_renew ->
          let group = Msg.pop_u32 m in
          let rank = Msg.pop_u32 m in
          let lease = pop_time m in
          Some (Renew { group; rank; lease })
        | o when o = op_unregister ->
          let group = Msg.pop_u32 m in
          let rank = Msg.pop_u32 m in
          Some (Unregister { group; rank })
        | o when o = op_lookup ->
          let group = Msg.pop_u32 m in
          let rank = Msg.pop_u32 m in
          Some (Lookup { group; rank })
        | o when o = op_list_group -> Some (List_group (Msg.pop_u32 m))
        | o when o = op_list_groups -> Some List_groups
        | o when o = op_subscribe -> Some (Subscribe (Msg.pop_u32 m))
        | o when o = op_unsubscribe -> Some (Unsubscribe (Msg.pop_u32 m))
        | o when o = op_repl_delta ->
          let epoch = Msg.pop_u32 m in
          let seq = Msg.pop_u32 m in
          let group = Msg.pop_u32 m in
          let version = Msg.pop_u32 m in
          let change =
            match Msg.pop_u8 m with
            | 1 ->
              let rank = Msg.pop_u32 m in
              let addr = Msg.pop_string m in
              let remaining = pop_time m in
              Some (Ch_bind { rank; addr; remaining })
            | 2 -> Some (Ch_remove (Msg.pop_u32 m))
            | 3 -> Some (Ch_sub (Msg.pop_string m))
            | 4 -> Some (Ch_unsub (Msg.pop_string m))
            | _ -> None
          in
          Option.map
            (fun change -> Repl_delta { epoch; seq; group; version; change })
            change
        | o when o = op_repl_heartbeat ->
          let epoch = Msg.pop_u32 m in
          let seq = Msg.pop_u32 m in
          Some (Repl_heartbeat { epoch; seq })
        | o when o = op_repl_sync -> Some (Repl_sync { from_seq = Msg.pop_u32 m })
        | o when o = op_repl_snapshot ->
          let epoch = Msg.pop_u32 m in
          let seq = Msg.pop_u32 m in
          let n = Msg.pop_u16 m in
          let groups =
            List.init n (fun _ ->
                let sg_group = Msg.pop_u32 m in
                let sg_version = Msg.pop_u32 m in
                let ne = Msg.pop_u16 m in
                let sg_entries =
                  List.init ne (fun _ ->
                      let rank = Msg.pop_u32 m in
                      let addr = Msg.pop_string m in
                      let remaining = pop_time m in
                      (rank, addr, remaining))
                in
                let ns = Msg.pop_u16 m in
                let sg_subs = List.init ns (fun _ -> Msg.pop_string m) in
                { sg_group; sg_version; sg_entries; sg_subs })
          in
          Some (Repl_snapshot { epoch; seq; groups })
        | _ -> None
      in
      match req with
      | Some r -> Ok (req_id, r)
      | None -> Result.Error (Printf.sprintf "unknown directory request opcode %d" op))

let decode_reply payload =
  decode payload (fun m op req_id ->
      let rep =
        match op with
        | o when o = op_registered ->
          let group = Msg.pop_u32 m in
          let rank = Msg.pop_u32 m in
          let version = Msg.pop_u32 m in
          let expires = pop_time m in
          Some (Registered { group; rank; version; expires })
        | o when o = op_found ->
          let group = Msg.pop_u32 m in
          let rank = Msg.pop_u32 m in
          let addr = Msg.pop_string m in
          Some (Found { group; rank; addr })
        | o when o = op_entries ->
          let group = Msg.pop_u32 m in
          let version = Msg.pop_u32 m in
          let n = Msg.pop_u16 m in
          let entries =
            List.init n (fun _ ->
                let rank = Msg.pop_u32 m in
                let addr = Msg.pop_string m in
                (rank, addr))
          in
          Some (Entries { group; version; entries })
        | o when o = op_groups ->
          let n = Msg.pop_u16 m in
          Some (Groups (List.init n (fun _ -> Msg.pop_u32 m)))
        | o when o = op_subscribed ->
          let group = Msg.pop_u32 m in
          let version = Msg.pop_u32 m in
          Some (Subscribed { group; version })
        | o when o = op_done -> Some Done
        | o when o = op_notify ->
          let group = Msg.pop_u32 m in
          let version = Msg.pop_u32 m in
          let rank = Msg.pop_u32 m in
          let addr = if Msg.pop_bool m then Some (Msg.pop_string m) else None in
          Some (Notify { group; version; rank; addr })
        | o when o = op_error ->
          let code = Msg.pop_u8 m in
          let detail = Msg.pop_string m in
          (match error_code_of_int code with
           | Some code -> Some (Error { code; detail })
           | None -> None)
        | _ -> None
      in
      match rep with
      | Some r -> Ok (req_id, r)
      | None -> Result.Error (Printf.sprintf "unknown directory reply opcode %d" op))

let pp_request fmt = function
  | Register { group; rank; addr; lease } ->
    Format.fprintf fmt "register g=%d r=%d addr=%s lease=%.3f" group rank addr lease
  | Renew { group; rank; lease } ->
    Format.fprintf fmt "renew g=%d r=%d lease=%.3f" group rank lease
  | Unregister { group; rank } -> Format.fprintf fmt "unregister g=%d r=%d" group rank
  | Lookup { group; rank } -> Format.fprintf fmt "lookup g=%d r=%d" group rank
  | List_group g -> Format.fprintf fmt "list g=%d" g
  | List_groups -> Format.fprintf fmt "list-groups"
  | Subscribe g -> Format.fprintf fmt "subscribe g=%d" g
  | Unsubscribe g -> Format.fprintf fmt "unsubscribe g=%d" g
  | Repl_delta { epoch; seq; group; version; change } ->
    Format.fprintf fmt "repl-delta e=%d s=%d g=%d v=%d %s" epoch seq group version
      (match change with
       | Ch_bind { rank; addr; _ } -> Printf.sprintf "bind r=%d %s" rank addr
       | Ch_remove rank -> Printf.sprintf "remove r=%d" rank
       | Ch_sub a -> Printf.sprintf "sub %s" a
       | Ch_unsub a -> Printf.sprintf "unsub %s" a)
  | Repl_heartbeat { epoch; seq } -> Format.fprintf fmt "repl-heartbeat e=%d s=%d" epoch seq
  | Repl_sync { from_seq } -> Format.fprintf fmt "repl-sync from=%d" from_seq
  | Repl_snapshot { epoch; seq; groups } ->
    Format.fprintf fmt "repl-snapshot e=%d s=%d groups=%d" epoch seq (List.length groups)

let pp_reply fmt = function
  | Registered { group; rank; version; expires } ->
    Format.fprintf fmt "registered g=%d r=%d v=%d exp=%.3f" group rank version expires
  | Found { group; rank; addr } -> Format.fprintf fmt "found g=%d r=%d %s" group rank addr
  | Entries { group; version; entries } ->
    Format.fprintf fmt "entries g=%d v=%d n=%d" group version (List.length entries)
  | Groups gs -> Format.fprintf fmt "groups n=%d" (List.length gs)
  | Subscribed { group; version } -> Format.fprintf fmt "subscribed g=%d v=%d" group version
  | Done -> Format.fprintf fmt "done"
  | Notify { group; version; rank; addr } ->
    Format.fprintf fmt "notify g=%d v=%d r=%d %s" group version rank
      (match addr with Some a -> a | None -> "(gone)")
  | Error { code; detail } ->
    Format.fprintf fmt "error %s: %s" (error_code_to_string code) detail
