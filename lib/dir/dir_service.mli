(** The directory service: leased rank->address bindings per group,
    lookup, group listing and change notifications, served over one
    {!Horus_transport.Backend} socket speaking {!Dir_protocol} frames.

    Deterministic under virtual time: every mutation bumps the group's
    version and notifies subscribers in sorted-address order; the
    lease sweep evicts in sorted (gid, rank) order. Replies go to the
    datagram's socket source address — the directory bootstraps the
    peer book, so it does not rely on one. *)

type t

type role = Primary | Backup

val create :
  ?sweep_period:float ->
  ?max_lease:float ->
  ?replicas:string list ->
  ?replica_index:int ->
  ?promote_after:float ->
  engine:Horus_sim.Engine.t ->
  Horus_transport.Backend.t ->
  t
(** Takes ownership of the backend's rx callback and schedules the
    lease sweep (default every 0.5 s) on [engine]. Requested leases
    are clamped to [(0, max_lease]] (default 30 s).

    Replication: [replicas] is the full ordered replica address list
    (index 0 = the initial primary, the remainder the promotion
    order) and [replica_index] this instance's slot in it (default 0).
    The primary streams every mutation as a versioned delta to its
    backups and heartbeats them each sweep tick; a backup mirrors the
    stream (asking for a full snapshot on a sequence gap), answers
    client traffic with a [Not_primary] redirect, and promotes itself
    after the primary has been silent for
    [replica_index * promote_after] seconds (default slot width
    1.5 s) — a deterministic stagger, so replicas fail over in list
    order without an election. Promotion bumps the service {!epoch};
    frames of the new incarnation carry a fresh src eid. *)

val stop : t -> unit
(** Cancel the sweep and ignore further traffic (the backend is the
    caller's to close). *)

val addr : t -> string
(** The backend address clients should talk to. *)

val sweep_now : t -> unit
(** Run one eviction pass immediately (the periodic sweep also runs). *)

val groups : t -> int list
(** Sorted gids with state (bindings or subscribers, past or present). *)

val entries : t -> group:int -> (int * string * float) list
(** Live bindings, rank-sorted: (rank, addr, expiry time). *)

val version : t -> group:int -> int
(** The group's change counter (0 if never touched). *)

val role : t -> role

val role_string : t -> string
(** ["primary"] or ["backup"]. *)

val epoch : t -> int
(** The primary incarnation this replica is serving or following;
    bumped by every promotion. *)

val replica_index : t -> int

type stats = {
  mutable s_requests : int;
  mutable s_replies : int;
  mutable s_notifies : int;
  mutable s_evictions : int;
  mutable s_errors : int;
  mutable s_bad : int;
  mutable s_deltas_out : int;   (** replication deltas streamed (per backup) *)
  mutable s_deltas_in : int;    (** replication deltas applied *)
  mutable s_promotions : int;   (** backup -> primary transitions *)
  mutable s_redirects : int;    (** [Not_primary] replies sent *)
  mutable s_syncs : int;        (** snapshots served / requested *)
}

val stats : t -> stats

val export_metrics : ?prefix:string -> t -> Horus_obs.Metrics.t -> unit
(** Mirror {!stats} plus binding/group gauges into the registry
    ([prefix] defaults to ["dir"]); call at snapshot time. *)
