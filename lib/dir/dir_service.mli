(** The directory service: leased rank->address bindings per group,
    lookup, group listing and change notifications, served over one
    {!Horus_transport.Backend} socket speaking {!Dir_protocol} frames.

    Deterministic under virtual time: every mutation bumps the group's
    version and notifies subscribers in sorted-address order; the
    lease sweep evicts in sorted (gid, rank) order. Replies go to the
    datagram's socket source address — the directory bootstraps the
    peer book, so it does not rely on one. *)

type t

val create :
  ?sweep_period:float ->
  ?max_lease:float ->
  engine:Horus_sim.Engine.t ->
  Horus_transport.Backend.t ->
  t
(** Takes ownership of the backend's rx callback and schedules the
    lease sweep (default every 0.5 s) on [engine]. Requested leases
    are clamped to [(0, max_lease]] (default 30 s). *)

val stop : t -> unit
(** Cancel the sweep and ignore further traffic (the backend is the
    caller's to close). *)

val addr : t -> string
(** The backend address clients should talk to. *)

val sweep_now : t -> unit
(** Run one eviction pass immediately (the periodic sweep also runs). *)

val groups : t -> int list
(** Sorted gids with state (bindings or subscribers, past or present). *)

val entries : t -> group:int -> (int * string * float) list
(** Live bindings, rank-sorted: (rank, addr, expiry time). *)

val version : t -> group:int -> int
(** The group's change counter (0 if never touched). *)

type stats = {
  mutable s_requests : int;
  mutable s_replies : int;
  mutable s_notifies : int;
  mutable s_evictions : int;
  mutable s_errors : int;
  mutable s_bad : int;
}

val stats : t -> stats

val export_metrics : ?prefix:string -> t -> Horus_obs.Metrics.t -> unit
(** Mirror {!stats} plus binding/group gauges into the registry
    ([prefix] defaults to ["dir"]); call at snapshot time. *)
