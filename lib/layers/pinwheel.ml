(* PINWHEEL: stability tracking with a rotating aggregator.

   Provides the same stability matrix as STABLE (P14) with different
   economics: instead of every member gossiping its ack vector to
   everyone (O(n^2) deliveries per period), responsibility rotates —
   the member whose rank matches the current round pulls ack vectors
   with one multicast, members answer with unicasts, and the wheel
   member multicasts the aggregated matrix: O(n) per period. The bench
   suite compares the two (experiment E11). *)

open Horus_msg
open Horus_hcpi

let k_data = 0
let k_pull = 1
let k_ackvec = 2
let k_matrix = 3
let k_app_send = 4

type state = {
  env : Layer.env;
  auto_ack : bool;
  period : float;
  suspect_after : float;
      (* a member silent this long is reported downward (D_suspect) so
         a membership layer below can react; 0 = detection off *)
  mutable view : View.t option;
  mutable my_rank : int;
  mutable next_seq : int;
  mutable own_acks : int array;
  mutable matrix : int array array;
  mutable round : int;
  mutable collecting : bool;
  mutable last_heard : float array;             (* per rank, engine time *)
  mutable reported : bool array;                (* one D_suspect per silence *)
  mutable stop_timer : unit -> unit;
  mutable pulls : int;
}

let n_members t = match t.view with Some v -> View.size v | None -> 0

let tnow t = Horus_sim.Engine.now t.env.Layer.engine

(* Any wheel traffic from [rank] is evidence of life: the pull, ack
   vector and matrix rounds give every live member a voice each
   rotation, so silence longer than a few periods is meaningful. *)
let heard t rank =
  if t.suspect_after > 0.0 && rank >= 0 && rank < Array.length t.last_heard then begin
    t.last_heard.(rank) <- tnow t;
    t.reported.(rank) <- false
  end

(* Suspicion travels DOWN: PINWHEEL sits above the membership layer,
   so a silent member is reported with D_suspect for MBRSHIP's
   handle_down to pick up (same contract as the application's own
   suspect downcall), once per continuous silence. *)
let check_silence t =
  if t.suspect_after > 0.0 then
    match t.view with
    | Some v when View.size v > 1 && t.my_rank >= 0 ->
      let now = tnow t in
      Array.iteri
        (fun r last ->
           if r <> t.my_rank && (not t.reported.(r))
              && now -. last > t.suspect_after
           then begin
             t.reported.(r) <- true;
             t.env.Layer.emit_down (Event.D_suspect [ View.nth v r ])
           end)
        t.last_heard
    | Some _ | None -> ()

let emit_matrix t =
  match t.view with
  | None -> ()
  | Some v ->
    t.env.Layer.emit_up
      (Event.U_stable
         { Event.origins = View.members_array v; acked = Array.map Array.copy t.matrix })

let ack t id =
  let rank, seq = Stable.split_id id in
  if rank >= 0 && rank < Array.length t.own_acks && seq + 1 > t.own_acks.(rank) then begin
    t.own_acks.(rank) <- seq + 1;
    if t.my_rank >= 0 then t.matrix.(rank).(t.my_rank) <- t.own_acks.(rank)
  end

let push_vec m vec =
  for i = Array.length vec - 1 downto 0 do
    Msg.push_u32 m vec.(i)
  done;
  Msg.push_u16 m (Array.length vec)

let pop_vec m =
  let n = Msg.pop_u16 m in
  Array.init n (fun _ -> Msg.pop_u32 m)

(* Wheel member: pull, and half a period later multicast whatever
   arrived. *)
let my_turn t =
  let n = n_members t in
  n > 1 && t.my_rank >= 0 && t.round mod n = t.my_rank && not t.collecting

let do_pull t =
  t.pulls <- t.pulls + 1;
  t.collecting <- true;
  let round = t.round in
  let m = Msg.empty () in
  Msg.push_u32 m round;
  Msg.push_u8 m k_pull;
  t.env.Layer.emit_down (Event.D_cast m);
  ignore
    (t.env.Layer.set_timer ~delay:(t.period /. 2.0) (fun () ->
         if t.collecting && t.round = round then begin
           t.collecting <- false;
           let mm = Msg.empty () in
           let n = Array.length t.matrix in
           for i = n - 1 downto 0 do
             push_vec mm t.matrix.(i)
           done;
           Msg.push_u16 mm n;
           Msg.push_u32 mm round;
           Msg.push_u8 mm k_matrix;
           t.env.Layer.emit_down (Event.D_cast mm)
         end))

let on_view t v =
  let n = View.size v in
  t.view <- Some v;
  t.my_rank <- Option.value (View.rank_of v t.env.Layer.endpoint) ~default:(-1);
  t.next_seq <- 0;
  t.own_acks <- Array.make n 0;
  t.matrix <- Array.make_matrix n n 0;
  t.round <- 0;
  t.collecting <- false;
  t.last_heard <- Array.make n (tnow t);
  t.reported <- Array.make n false

let create params env =
  let t =
    { env;
      auto_ack = Params.get_bool params "auto_ack" ~default:true;
      period = Params.get_float params "period" ~default:0.05;
      suspect_after = Params.get_float params "suspect_after" ~default:0.0;
      view = None;
      my_rank = -1;
      next_seq = 0;
      own_acks = [||];
      matrix = [||];
      round = 0;
      collecting = false;
      last_heard = [||];
      reported = [||];
      stop_timer = (fun () -> ());
      pulls = 0 }
  in
  t.stop_timer <-
    Layer.every env ~period:t.period (fun () ->
        if my_turn t then do_pull t;
        check_silence t);
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m ->
      Msg.push_u32 m t.next_seq;
      t.next_seq <- t.next_seq + 1;
      Msg.push_u8 m k_data;
      env.Layer.emit_down (Event.D_cast m)
    | Event.D_send (dsts, m) ->
      Msg.push_u8 m k_app_send;
      env.Layer.emit_down (Event.D_send (dsts, m))
    | Event.D_ack id | Event.D_stable id -> ack t id
    | _ -> env.Layer.emit_down ev
  in
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      heard t rank;
      (try
         let kind = Msg.pop_u8 m in
         if kind = k_data then begin
           let seq = Msg.pop_u32 m in
           let id = Stable.make_id ~rank:(Int.max rank 0) ~seq in
           env.Layer.emit_up (Event.U_cast (rank, m, (Stable.meta_key, id) :: meta));
           if t.auto_ack then ack t id
         end
         else if kind = k_pull then begin
           let round = Msg.pop_u32 m in
           match t.view with
           | Some v when rank >= 0 ->
             let reply = Msg.empty () in
             push_vec reply t.own_acks;
             Msg.push_u32 reply round;
             Msg.push_u8 reply k_ackvec;
             t.env.Layer.emit_down (Event.D_send ([ View.nth v rank ], reply))
           | Some _ | None -> ()
         end
         else if kind = k_ackvec then begin
           let _round = Msg.pop_u32 m in
           let vec = pop_vec m in
           if rank >= 0 && Array.length vec = Array.length t.matrix then
             for origin = 0 to Array.length vec - 1 do
               if vec.(origin) > t.matrix.(origin).(rank) then
                 t.matrix.(origin).(rank) <- vec.(origin)
             done
         end
         else if kind = k_matrix then begin
           let round = Msg.pop_u32 m in
           let n = Msg.pop_u16 m in
           let rows = Array.init n (fun _ -> pop_vec m) in
           if n = Array.length t.matrix then begin
             for i = 0 to n - 1 do
               for j = 0 to n - 1 do
                 if rows.(i).(j) > t.matrix.(i).(j) then t.matrix.(i).(j) <- rows.(i).(j)
               done
             done;
             if round >= t.round then t.round <- round + 1;
             emit_matrix t
           end
         end
         else env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown kind %d" kind)
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | Event.U_view v ->
      on_view t v;
      env.Layer.emit_up ev
    | Event.U_send (rank, m, meta) ->
      (* Ack vectors arrive as sends; anything else passes through. *)
      heard t rank;
      (try
         let kind = Msg.pop_u8 m in
         if kind = k_ackvec then begin
           let _round = Msg.pop_u32 m in
           let vec = pop_vec m in
           if rank >= 0 && Array.length vec = Array.length t.matrix then
             for origin = 0 to Array.length vec - 1 do
               if vec.(origin) > t.matrix.(origin).(rank) then
                 t.matrix.(origin).(rank) <- vec.(origin)
             done
         end
         else if kind = k_app_send then env.Layer.emit_up (Event.U_send (rank, m, meta))
         else env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown send kind %d" kind)
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "PINWHEEL";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "rank=%d round=%d pulls=%d" t.my_rank t.round t.pulls ]);
    inert = false;
    stop = (fun () -> t.stop_timer ()) }
