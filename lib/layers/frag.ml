(* FRAG: fragmentation and reassembly of large messages (Section 7).

   Messages longer than the fragment size are split; each fragment
   carries a single "more fragments follow" flag — the one bit of
   header the paper measures in Section 10. Reassembly relies on the
   FIFO ordering of the layers below: fragments of one origin arrive in
   order and are concatenated until the flag clears.

   Casts and subset sends reassemble independently per origin, since a
   member may interleave the two. *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  frag_size : int;
  cast_partial : (int, Buffer.t) Hashtbl.t;  (* origin eid -> bytes so far *)
  send_partial : (int, Buffer.t) Hashtbl.t;
  mutable fragmented : int;
  mutable reassembled : int;
}

let src_of meta = Option.value (Event.meta_find meta Com.src_meta) ~default:(-1)

(* Split [m] into fragments of at most [frag_size] payload bytes, each
   tagged with the more-flag; emit them downward via [send]. *)
let fragment t m ~send =
  let total = Msg.length m in
  if total <= t.frag_size then begin
    Msg.push_bool m false;
    send m
  end
  else begin
    t.fragmented <- t.fragmented + 1;
    let rec loop m =
      if Msg.length m > t.frag_size then begin
        let rest = Msg.split_off m (Msg.length m - t.frag_size) in
        Msg.push_bool m true;
        send m;
        loop rest
      end
      else begin
        Msg.push_bool m false;
        send m
      end
    in
    loop m
  end

let reassemble t table ~key ~more m =
  if more then begin
    let buf =
      match Hashtbl.find_opt table key with
      | Some b -> b
      | None ->
        let b = Buffer.create 256 in
        Hashtbl.replace table key b;
        b
    in
    Buffer.add_string buf (Msg.to_string m);
    None
  end
  else
    match Hashtbl.find_opt table key with
    | None -> Some m  (* unfragmented, the common case *)
    | Some buf ->
      Hashtbl.remove table key;
      Buffer.add_string buf (Msg.to_string m);
      t.reassembled <- t.reassembled + 1;
      Some (Msg.create (Buffer.contents buf))

let create params env =
  let t =
    { env;
      frag_size = Params.get_int params "frag_size" ~default:1024;
      cast_partial = Hashtbl.create 8;
      send_partial = Hashtbl.create 8;
      fragmented = 0;
      reassembled = 0 }
  in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m -> fragment t m ~send:(fun f -> env.Layer.emit_down (Event.D_cast f))
    | Event.D_send (dsts, m) ->
      fragment t m ~send:(fun f -> env.Layer.emit_down (Event.D_send (dsts, Msg.copy f)))
    | Event.D_view _ ->
      (* New destination set: no cross-view reassembly. *)
      Hashtbl.reset t.cast_partial;
      Hashtbl.reset t.send_partial;
      env.Layer.emit_down ev
    | _ -> env.Layer.emit_down ev
  in
  (* Fused form: single-fragment casts only. The send check sees the
     application payload length, before upper layers add headers, so
     it keeps a conservative 64-byte slack — whenever the fused check
     passes, the full path would not have fragmented either (and a
     false negative merely falls back). Delivery fuses the common
     unfragmented case: more-flag clear and no partial pending from
     that origin. *)
  env.Layer.fp_register (fun () ->
      Some
        { Layer.fp_send_ready = (fun ~len -> len + 64 <= t.frag_size);
          fp_send = (fun seg -> Seg.push_bool seg false);
          fp_deliver_check =
            (fun ~rank:_ ~meta m ->
               (not (Msg.pop_bool m))
               && not (Hashtbl.mem t.cast_partial (src_of meta)));
          fp_deliver_commit = (fun ~rank:_ ~meta:_ _ -> ()) });
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      (try
         let more = Msg.pop_bool m in
         match reassemble t t.cast_partial ~key:(src_of meta) ~more m with
         | Some whole -> env.Layer.emit_up (Event.U_cast (rank, whole, meta))
         | None -> ()
       with Msg.Truncated _ -> env.Layer.trace ~category:"dropped" "truncated fragment")
    | Event.U_send (rank, m, meta) ->
      (try
         let more = Msg.pop_bool m in
         match reassemble t t.send_partial ~key:(src_of meta) ~more m with
         | Some whole -> env.Layer.emit_up (Event.U_send (rank, whole, meta))
         | None -> ()
       with Msg.Truncated _ -> env.Layer.trace ~category:"dropped" "truncated fragment")
    | Event.U_lost_message rank ->
      (* A fragment went missing below; any partial from that origin is
         unusable. We cannot map rank back to eid reliably here, so
         drop all partial cast state — rare and safe. *)
      Hashtbl.reset t.cast_partial;
      env.Layer.emit_up (Event.U_lost_message rank)
    | Event.U_view _ ->
      Hashtbl.reset t.cast_partial;
      Hashtbl.reset t.send_partial;
      env.Layer.emit_up ev
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "FRAG";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "frag_size=%d fragmented=%d reassembled=%d partials=%d" t.frag_size
             t.fragmented t.reassembled
             (Hashtbl.length t.cast_partial + Hashtbl.length t.send_partial) ]);
    inert = false;
    stop = (fun () -> ()) }
