(** NAK: reliable FIFO delivery via sequence numbers and negative
    acknowledgements (Sections 2 and 7) — cast lanes scoped to view
    epochs, pair lanes for subset sends, periodic status multicast for
    buffer GC, gap detection and failure suspicion (PROBLEM upcalls).

    Retransmission timing is adaptive: an {!Rto} estimator smooths RTT
    samples (pair acks under Karn's rule, NAK-repair turnarounds) into
    a retransmission timeout, and unanswered retransmissions back off
    exponentially with jitter up to a cap. With a metrics registry in
    the layer environment, the layer exports [nak.retransmits],
    [nak.rtt_est_us] and [nak.backoff_max_hit].

    Parameters: [status_period] (default 0.05 s), [suspect_after]
    (default 5x the period), [nak_holdoff] (floor on NAK re-asks),
    [buffer_limit] (default unbounded) — beyond it, forgotten casts
    are answered with placeholders that surface as LOST_MESSAGE —
    [pair_buffer_limit] (default unbounded) bounding per-peer unacked
    sends, [rto_init] (default 2x the period), [rto_min] (default half
    the period), [rto_max] (default 2 s) and [backoff_jitter] (default
    0.1). *)

(** Adaptive retransmission timing (Jacobson estimator, Karn-filtered
    samples, exponential backoff). Pure state + arithmetic; exposed
    for deterministic unit tests. *)
module Rto : sig
  type t

  val create : ?init:float -> ?min_rto:float -> ?max_rto:float -> unit -> t
  (** Defaults: init 0.1 s, min 0.02 s, max 2 s. Raises
      [Invalid_argument] unless [0 < min_rto <= max_rto] and
      [init > 0]. *)

  val observe : t -> float -> unit
  (** Feed one RTT sample (seconds; negatives are ignored). *)

  val srtt : t -> float option
  (** Smoothed estimate; [None] before the first sample. *)

  val rto : t -> float
  (** Current timeout: [srtt + 4 * rttvar] clamped into
      [[min_rto, max_rto]]; [init] (clamped) before any sample. *)

  val backoff : t -> attempt:int -> float
  (** [rto * 2^attempt] capped at [max_rto]; attempt 0 is the first
      retransmission. *)

  val capped : t -> attempt:int -> bool
  (** The backoff for [attempt] has reached [max_rto]. *)

  val with_jitter : float -> frac:float -> u:float -> float
  (** [base * (1 + frac * (2u - 1))]: symmetric jitter for
      [u] uniform in [0, 1). *)
end

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
