(** PINWHEEL: stability via a rotating aggregator — one member per
    round pulls ack vectors and multicasts the merged matrix: O(n) per
    round against STABLE's O(n^2) gossip, at slower convergence
    (experiment E11). Parameters [auto_ack], [period], and
    [suspect_after] (default 0 = off): a member silent on the wheel
    longer than this is reported downward with D_suspect — PINWHEEL
    sits above the membership layer, so suspicion uses the same
    downcall contract as the application's own suspect request. *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
