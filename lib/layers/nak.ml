(* NAK: reliable FIFO delivery via sequence numbers and negative
   acknowledgements (Sections 2 and 7).

   Casts carry a per-origin, per-view-epoch sequence number. A receiver
   that detects a gap asks the origin for a retransmission (NAK); the
   origin retransmits from its buffer, or sends a placeholder that
   surfaces as a LOST_MESSAGE upcall if the buffer no longer holds the
   message. Each endpoint periodically multicasts its protocol status,
   which (a) lets origins garbage-collect acknowledged buffers, (b)
   reveals gaps even when no later data arrives, and (c) doubles as a
   failure detector: prolonged silence raises a PROBLEM upcall.

   Subset sends use per-pair sequence numbers with positive acks and
   per-message retransmission deadlines: one RTO (Jacobson-estimated
   from ack and NAK-repair turnarounds, Karn-filtered) after the send,
   then exponential backoff with jitter up to a cap (see Rto). Pair
   lanes are independent of view epochs so that membership protocols
   above can rely on them during view changes; per-lane buffers can be
   bounded (pair_buffer_limit) so an unreachable peer cannot hold
   memory hostage.

   Wire kinds (first header byte):
     0 DATA_CAST   epoch, seq        - sequenced multicast data
     1 DATA_SEND   seq               - sequenced pair data
     2 NAK_CAST    epoch, from, to   - please retransmit casts
     3 STATUS      entries           - periodic protocol status
     4 PLACEHOLDER epoch, seq        - gap fill for a lost cast
     5 ACK_SEND    high              - cumulative ack for pair data *)

open Horus_msg
open Horus_hcpi

(* Adaptive retransmission timing, TCP-style (Jacobson/Karn): a
   smoothed RTT estimate drives the retransmission timeout, and every
   unanswered retransmission doubles it up to a cap, so a lossy or
   slow path is probed gently instead of being hammered at a fixed
   period. Pure state + arithmetic, no timers of its own — the layer
   samples, asks, and schedules. *)
module Rto = struct
  type t = {
    init : float;          (* RTO before any sample arrives *)
    min_rto : float;
    max_rto : float;
    mutable srtt : float;  (* negative = no sample yet *)
    mutable rttvar : float;
  }

  let create ?(init = 0.1) ?(min_rto = 0.02) ?(max_rto = 2.0) () =
    if init <= 0.0 || min_rto <= 0.0 || max_rto < min_rto then
      invalid_arg "Rto.create: need 0 < min_rto <= max_rto and init > 0";
    { init; min_rto; max_rto; srtt = -1.0; rttvar = 0.0 }

  let srtt t = if t.srtt < 0.0 then None else Some t.srtt

  (* Standard EWMA gains: alpha = 1/8 for the mean, beta = 1/4 for the
     deviation. *)
  let observe t sample =
    if sample >= 0.0 then
      if t.srtt < 0.0 then begin
        t.srtt <- sample;
        t.rttvar <- sample /. 2.0
      end
      else begin
        t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. sample));
        t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
      end

  let clamp t v = Float.min t.max_rto (Float.max t.min_rto v)

  let rto t =
    if t.srtt < 0.0 then clamp t t.init else clamp t (t.srtt +. (4.0 *. t.rttvar))

  (* Exponential backoff: attempt 0 waits one RTO, each further
     attempt doubles, capped at max_rto. *)
  let backoff t ~attempt =
    let a = Int.max 0 (Int.min attempt 30) in
    Float.min t.max_rto (rto t *. Float.of_int (1 lsl a))

  let capped t ~attempt = backoff t ~attempt >= t.max_rto

  (* Symmetric jitter: [u] uniform in [0, 1) spreads the deadline
     within [base * (1 - frac), base * (1 + frac)], so synchronized
     losers do not retransmit in lockstep. *)
  let with_jitter base ~frac ~u = base *. (1.0 +. (frac *. ((2.0 *. u) -. 1.0)))
end

let k_data_cast = 0
let k_data_send = 1
let k_nak_cast = 2
let k_status = 3
let k_placeholder = 4
let k_ack_send = 5

type pending = {
  p_rank : int;
  p_msg : Msg.t;
  p_meta : Event.meta;
  p_placeholder : bool;
}

(* Receiving side of one origin's cast lane. *)
type cast_recv = {
  mutable cr_expected : int;
  cr_ooo : (int, pending) Hashtbl.t;
  mutable cr_last_nak_for : int;    (* dedup: last expected we nak'ed *)
  mutable cr_last_nak_at : float;
  mutable cr_nak_attempts : int;    (* re-asks for the same gap; drives backoff *)
}

(* One unacknowledged pair message awaiting its retransmission
   deadline. *)
type unacked = {
  u_msg : Msg.t;                    (* framed copy *)
  u_sent_at : float;                (* first transmission, for RTT sampling *)
  mutable u_attempts : int;         (* retransmissions so far *)
  mutable u_due : float;            (* next retransmission deadline *)
  mutable u_last_tx : float;        (* last transmission, bounds fast retransmit *)
}

(* Receiving and sending side of a pair (send) lane with one peer. *)
type pair_lane = {
  mutable pl_next_seq : int;                 (* sender side *)
  pl_unacked : (int, unacked) Hashtbl.t;     (* seq -> in-flight entry *)
  mutable pl_expected : int;                 (* receiver side *)
  pl_ooo : (int, pending) Hashtbl.t;
}

type state = {
  env : Layer.env;
  status_period : float;
  suspect_after : float;
  nak_holdoff : float;
  buffer_limit : int;
      (* retransmission buffer bound; beyond it the oldest casts are
         forgotten and can only be answered with placeholders *)
  pair_buffer_limit : int;
      (* per-peer bound on unacked pair messages; beyond it the oldest
         are forgotten (an unreachable peer must not hold memory
         hostage forever) *)
  rto : Rto.t;
  jitter : float;                   (* backoff jitter fraction *)
  m_retransmits : Horus_obs.Metrics.counter option;
  m_rtt_est : Horus_obs.Metrics.gauge option;
  m_backoff_hit : Horus_obs.Metrics.counter option;
  mutable epoch : int;
  mutable members : Addr.endpoint array;     (* current destination set *)
  mutable cast_next_seq : int;               (* my own cast lane, this epoch *)
  cast_buffer : (int, Msg.t) Hashtbl.t;      (* my casts, seq -> framed copy *)
  cast_acks : (int, int) Hashtbl.t;          (* peer eid -> high contiguous recv of my casts *)
  recv : (int, cast_recv) Hashtbl.t;         (* origin eid -> lane (current epoch) *)
  mutable future_list : (int * int * int * pending) list;
      (* (origin, epoch, seq, pending): casts from a future view epoch,
         held until our own view install catches up *)
  pairs : (int, pair_lane) Hashtbl.t;        (* peer eid -> lane *)
  last_heard : (int, float) Hashtbl.t;
  suspected : (int, unit) Hashtbl.t;
  mutable stop_timer : unit -> unit;
  (* statistics *)
  mutable naks_sent : int;
  mutable retransmissions : int;
  mutable placeholders : int;
  mutable duplicates : int;
}

let now t = Horus_sim.Engine.now t.env.Layer.engine

let my_eid t = Addr.endpoint_id t.env.Layer.endpoint

let heard t eid =
  Hashtbl.replace t.last_heard eid (now t);
  Hashtbl.remove t.suspected eid

(* Feed an RTT sample to the estimator and mirror it out. *)
let observe_rtt t sample =
  Rto.observe t.rto sample;
  match (t.m_rtt_est, Rto.srtt t.rto) with
  | Some g, Some srtt -> Horus_obs.Metrics.set g (srtt *. 1e6)
  | _ -> ()

let count_retransmission t =
  t.retransmissions <- t.retransmissions + 1;
  Option.iter Horus_obs.Metrics.incr t.m_retransmits

(* A jittered deadline [attempt] backoffs out from now; counts cap
   hits as it goes. *)
let next_deadline t ~attempt =
  let base = Rto.backoff t.rto ~attempt in
  if attempt > 0 && Rto.capped t.rto ~attempt then
    Option.iter Horus_obs.Metrics.incr t.m_backoff_hit;
  now t
  +. Rto.with_jitter base ~frac:t.jitter ~u:(Horus_util.Prng.float t.env.Layer.prng 1.0)

let recv_lane t origin =
  match Hashtbl.find_opt t.recv origin with
  | Some l -> l
  | None ->
    let l =
      { cr_expected = 0; cr_ooo = Hashtbl.create 8; cr_last_nak_for = -1;
        cr_last_nak_at = -1.0; cr_nak_attempts = 0 }
    in
    Hashtbl.replace t.recv origin l;
    l

let pair_lane t peer =
  match Hashtbl.find_opt t.pairs peer with
  | Some l -> l
  | None ->
    let l =
      { pl_next_seq = 0; pl_unacked = Hashtbl.create 8; pl_expected = 0; pl_ooo = Hashtbl.create 8 }
    in
    Hashtbl.replace t.pairs peer l;
    l

(* Unicast a control/retransmission message directly to the layer
   below; the NAK header is already on [m]. *)
let xmit_to t dst m = t.env.Layer.emit_down (Event.D_send ([ dst ], m))

let send_nak t ~origin ~from_seq ~to_seq =
  let lane = recv_lane t origin in
  let tnow = now t in
  (* A fresh gap is asked about at once; re-asking about the same gap
     backs off exponentially (with jitter) from the RTO estimate, with
     the static holdoff as a floor — a dead origin must not be NAKed
     at line rate. *)
  let due =
    if lane.cr_last_nak_for <> from_seq then true
    else
      let wait =
        Float.max t.nak_holdoff
          (Rto.with_jitter
             (Rto.backoff t.rto ~attempt:lane.cr_nak_attempts)
             ~frac:t.jitter
             ~u:(Horus_util.Prng.float t.env.Layer.prng 1.0))
      in
      tnow -. lane.cr_last_nak_at > wait
  in
  if due then begin
    (* Repair traffic is about to flow: not steady state. *)
    t.env.Layer.fp_invalidate ();
    if lane.cr_last_nak_for = from_seq then begin
      lane.cr_nak_attempts <- lane.cr_nak_attempts + 1;
      if Rto.capped t.rto ~attempt:lane.cr_nak_attempts then
        Option.iter Horus_obs.Metrics.incr t.m_backoff_hit
    end
    else lane.cr_nak_attempts <- 0;
    lane.cr_last_nak_for <- from_seq;
    lane.cr_last_nak_at <- tnow;
    t.naks_sent <- t.naks_sent + 1;
    let m = Msg.empty () in
    Msg.push_u32 m to_seq;
    Msg.push_u32 m from_seq;
    Msg.push_u32 m t.epoch;
    Msg.push_u8 m k_nak_cast;
    xmit_to t (Addr.endpoint origin) m
  end

let deliver t (p : pending) =
  if p.p_placeholder then t.env.Layer.emit_up (Event.U_lost_message p.p_rank)
  else t.env.Layer.emit_up (Event.U_cast (p.p_rank, p.p_msg, p.p_meta))

(* Deliver in-sequence casts from an origin's lane, draining any
   buffered successors. *)
let accept_cast t ~origin ~seq (p : pending) =
  let lane = recv_lane t origin in
  if seq < lane.cr_expected || Hashtbl.mem lane.cr_ooo seq then
    t.duplicates <- t.duplicates + 1
  else begin
    Hashtbl.replace lane.cr_ooo seq p;
    if seq > lane.cr_expected then
      send_nak t ~origin ~from_seq:lane.cr_expected ~to_seq:(seq - 1);
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt lane.cr_ooo lane.cr_expected with
      | Some next ->
        Hashtbl.remove lane.cr_ooo lane.cr_expected;
        lane.cr_expected <- lane.cr_expected + 1;
        deliver t next
      | None -> continue := false
    done;
    (* The gap we asked about closed: the NAK-to-repair turnaround is
       an RTT sample (noisy — the original may have merely been slow —
       but the EWMA absorbs that), and the ask counter rewinds. *)
    if lane.cr_last_nak_at >= 0.0 && lane.cr_expected > lane.cr_last_nak_for then begin
      observe_rtt t (now t -. lane.cr_last_nak_at);
      lane.cr_last_nak_at <- -1.0;
      lane.cr_last_nak_for <- -1;
      lane.cr_nak_attempts <- 0
    end
  end

let accept_send t ~peer ~seq (p : pending) =
  let lane = pair_lane t peer in
  (* Ack cumulatively whatever we have, even for duplicates, so lost
     acks are repaired. *)
  let ack () =
    let m = Msg.empty () in
    Msg.push_u32 m lane.pl_expected;  (* = high contiguous + 1 *)
    Msg.push_u8 m k_ack_send;
    xmit_to t (Addr.endpoint peer) m
  in
  if seq < lane.pl_expected || Hashtbl.mem lane.pl_ooo seq then begin
    t.duplicates <- t.duplicates + 1;
    ack ()
  end
  else begin
    Hashtbl.replace lane.pl_ooo seq p;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt lane.pl_ooo lane.pl_expected with
      | Some next ->
        Hashtbl.remove lane.pl_ooo lane.pl_expected;
        lane.pl_expected <- lane.pl_expected + 1;
        (if next.p_placeholder then t.env.Layer.emit_up (Event.U_lost_message next.p_rank)
         else t.env.Layer.emit_up (Event.U_send (next.p_rank, next.p_msg, next.p_meta)));
        ()
      | None -> continue := false
    done;
    ack ()
  end

(* Garbage-collect my cast buffer: drop everything every current member
   has acknowledged. *)
let gc_cast_buffer t =
  let my = my_eid t in
  let min_acked = ref max_int in
  Array.iter
    (fun m ->
       let eid = Addr.endpoint_id m in
       if eid <> my then begin
         let a = Option.value (Hashtbl.find_opt t.cast_acks eid) ~default:(-1) in
         if a < !min_acked then min_acked := a
       end)
    t.members;
  if !min_acked < max_int then
    Hashtbl.iter
      (fun seq _ -> if seq <= !min_acked then Hashtbl.remove t.cast_buffer seq)
      (Hashtbl.copy t.cast_buffer)

let handle_nak_cast t ~requester m =
  let epoch = Msg.pop_u32 m in
  let from_seq = Msg.pop_u32 m in
  let to_seq = Msg.pop_u32 m in
  if epoch = t.epoch then begin
    t.env.Layer.fp_invalidate ();
    for seq = from_seq to to_seq do
      match Hashtbl.find_opt t.cast_buffer seq with
      | Some framed ->
        count_retransmission t;
        xmit_to t (Addr.endpoint requester) (Msg.copy framed)
      | None ->
        t.placeholders <- t.placeholders + 1;
        let ph = Msg.empty () in
        Msg.push_u32 ph seq;
        Msg.push_u32 ph epoch;
        Msg.push_u8 ph k_placeholder;
        xmit_to t (Addr.endpoint requester) ph
    done
  end

let status_message t =
  let m = Msg.empty () in
  let entries = ref [] in
  (* My own cast high-water mark, so receivers can detect trailing
     gaps. *)
  entries := (my_eid t, t.cast_next_seq) :: !entries;
  Hashtbl.iter (fun origin lane -> entries := (origin, lane.cr_expected) :: !entries) t.recv;
  let entries = List.sort_uniq compare !entries in
  List.iter
    (fun (eid, high) ->
       Msg.push_u32 m high;
       Msg.push_u32 m eid)
    (List.rev entries);
  Msg.push_u16 m (List.length entries);
  Msg.push_u32 m t.epoch;
  Msg.push_u8 m k_status;
  m

let handle_status t ~src m =
  let epoch = Msg.pop_u32 m in
  let n = Msg.pop_u16 m in
  let my = my_eid t in
  for _ = 1 to n do
    let eid = Msg.pop_u32 m in
    let high = Msg.pop_u32 m in
    if epoch = t.epoch then begin
      if eid = my then begin
        (* src has contiguously received my casts below [high]. *)
        let prev = Option.value (Hashtbl.find_opt t.cast_acks src) ~default:(-1) in
        if high - 1 > prev then Hashtbl.replace t.cast_acks src (high - 1)
      end
      else if eid = src then begin
        (* src has itself cast up to [high]; nak if we are behind. *)
        let lane = recv_lane t src in
        if high > lane.cr_expected then
          send_nak t ~origin:src ~from_seq:lane.cr_expected ~to_seq:(high - 1)
      end
    end
  done;
  if epoch = t.epoch then gc_cast_buffer t

(* Retransmit overdue unacked pair data (positive-ack scheme). Each
   entry carries its own deadline: first retransmission one RTO after
   the send, then doubling with jitter up to the cap — not the old
   blanket resend of everything every status period. *)
let retransmit_pairs t =
  let tnow = now t in
  Hashtbl.iter
    (fun peer lane ->
       Hashtbl.iter
         (fun _seq u ->
            if tnow >= u.u_due then begin
              u.u_attempts <- u.u_attempts + 1;
              u.u_due <- next_deadline t ~attempt:u.u_attempts;
              u.u_last_tx <- tnow;
              count_retransmission t;
              xmit_to t (Addr.endpoint peer) (Msg.copy u.u_msg)
            end)
         lane.pl_unacked)
    t.pairs

let check_failures t =
  let tnow = now t in
  let my = my_eid t in
  Array.iter
    (fun member ->
       let eid = Addr.endpoint_id member in
       if eid <> my && not (Hashtbl.mem t.suspected eid) then begin
         let last = Option.value (Hashtbl.find_opt t.last_heard eid) ~default:tnow in
         if not (Hashtbl.mem t.last_heard eid) then Hashtbl.replace t.last_heard eid tnow;
         if tnow -. last > t.suspect_after then begin
           Hashtbl.replace t.suspected eid ();
           t.env.Layer.trace ~category:"suspect" (Addr.endpoint_to_string member);
           t.env.Layer.emit_up (Event.U_problem member)
         end
       end)
    t.members

let on_timer t () =
  if Array.length t.members > 1 then t.env.Layer.emit_down (Event.D_cast (status_message t));
  retransmit_pairs t;
  check_failures t

(* Epoch change: new view installed. Cast lanes reset; pair lanes
   survive. Future-epoch casts buffered earlier are replayed. *)
let change_epoch t ~epoch ~members =
  if epoch <> t.epoch || t.members = [||] then begin
    t.epoch <- epoch;
    t.members <- members;
    (* Fresh grace period for every member of the new view: stale
       silence from before the install (e.g. across a partition that
       just merged) must not count against anyone. *)
    let tnow = now t in
    Array.iter (fun m -> Hashtbl.replace t.last_heard (Addr.endpoint_id m) tnow) members;
    Hashtbl.reset t.suspected;
    t.cast_next_seq <- 0;
    Hashtbl.reset t.cast_buffer;
    Hashtbl.reset t.cast_acks;
    Hashtbl.reset t.recv;
    let replay = List.filter (fun (_, e, _, _) -> e = epoch) (List.rev t.future_list) in
    t.future_list <- List.filter (fun (_, e, _, _) -> e > epoch) t.future_list;
    List.iter (fun (origin, _, seq, p) -> accept_cast t ~origin ~seq p) replay
  end
  else t.members <- members

let src_of meta = Option.value (Event.meta_find meta Com.src_meta) ~default:(-1)

let handle_down t (ev : Event.down) =
  match ev with
  | Event.D_cast m ->
    let seq = t.cast_next_seq in
    t.cast_next_seq <- seq + 1;
    Msg.push_u32 m seq;
    Msg.push_u32 m t.epoch;
    Msg.push_u8 m k_data_cast;
    Hashtbl.replace t.cast_buffer seq (Msg.copy m);
    (* Bounded buffering (the paper: "buffers some messages ... will
       retransmit if the message is still buffered. If not, it will
       send a place holder"). *)
    if Hashtbl.length t.cast_buffer > t.buffer_limit then begin
      let oldest =
        Hashtbl.fold (fun s _ acc -> Int.min s acc) t.cast_buffer max_int
      in
      Hashtbl.remove t.cast_buffer oldest
    end;
    t.env.Layer.emit_down (Event.D_cast m)
  | Event.D_send (dsts, m) ->
    (* Fan a subset send out into per-pair sequenced unicasts. *)
    List.iter
      (fun dst ->
         let peer = Addr.endpoint_id dst in
         let body = Msg.copy m in
         if peer = my_eid t then begin
           Msg.push_u32 body 0;
           Msg.push_u8 body k_data_send;
           t.env.Layer.emit_down (Event.D_send ([ dst ], body))
         end
         else begin
           let lane = pair_lane t peer in
           let seq = lane.pl_next_seq in
           lane.pl_next_seq <- seq + 1;
           Msg.push_u32 body seq;
           Msg.push_u8 body k_data_send;
           let tnow = now t in
           Hashtbl.replace lane.pl_unacked seq
             { u_msg = Msg.copy body; u_sent_at = tnow; u_attempts = 0;
               u_due = next_deadline t ~attempt:0; u_last_tx = tnow };
           (* Bounded in-flight window: an unreachable peer must not
              grow the lane without limit. Evicted messages are simply
              no longer retransmitted; the layers above (membership
              flush, merge watchdogs) own end-to-end recovery. *)
           if Hashtbl.length lane.pl_unacked > t.pair_buffer_limit then begin
             let oldest =
               Hashtbl.fold (fun s _ acc -> Int.min s acc) lane.pl_unacked max_int
             in
             Hashtbl.remove lane.pl_unacked oldest
           end;
           t.env.Layer.emit_down (Event.D_send ([ dst ], body))
         end)
      dsts
  | Event.D_view v ->
    change_epoch t ~epoch:(View.ltime v) ~members:(View.members_array v);
    t.env.Layer.emit_down ev
  | Event.D_join _ | Event.D_ack _ | Event.D_stable _ | Event.D_flush _ | Event.D_flush_ok
  | Event.D_merge _ | Event.D_merge_granted _ | Event.D_merge_denied _ | Event.D_suspect _
  | Event.D_leave | Event.D_dump ->
    t.env.Layer.emit_down ev

let handle_data t ~rank ~meta m ~(is_send : bool) =
  let src = src_of meta in
  heard t src;
  if is_send then begin
    let seq = Msg.pop_u32 m in
    if src = my_eid t then
      (* Loopback sends bypass lanes (seq field is zero). *)
      t.env.Layer.emit_up (Event.U_send (rank, m, meta))
    else
      accept_send t ~peer:src ~seq { p_rank = rank; p_msg = m; p_meta = meta; p_placeholder = false }
  end
  else begin
    let epoch = Msg.pop_u32 m in
    let seq = Msg.pop_u32 m in
    let p = { p_rank = rank; p_msg = m; p_meta = meta; p_placeholder = false } in
    if epoch = t.epoch then accept_cast t ~origin:src ~seq p
    else if epoch > t.epoch then t.future_list <- (src, epoch, seq, p) :: t.future_list
    (* stale epoch: drop *)
  end

let handle_up t (ev : Event.up) =
  match ev with
  | Event.U_cast (rank, m, meta) | Event.U_send (rank, m, meta) ->
    (try
       let kind = Msg.pop_u8 m in
       let src = src_of meta in
       heard t src;
       if kind = k_data_cast then handle_data t ~rank ~meta m ~is_send:false
       else if kind = k_data_send then handle_data t ~rank ~meta m ~is_send:true
       else if kind = k_nak_cast then handle_nak_cast t ~requester:src m
       else if kind = k_status then handle_status t ~src m
       else if kind = k_placeholder then begin
         let epoch = Msg.pop_u32 m in
         let seq = Msg.pop_u32 m in
         if epoch = t.epoch then
           accept_cast t ~origin:src ~seq
             { p_rank = rank; p_msg = m; p_meta = meta; p_placeholder = true }
       end
       else if kind = k_ack_send then begin
         let high = Msg.pop_u32 m in
         (match Hashtbl.find_opt t.pairs src with
          | Some lane ->
            let tnow = now t in
            Hashtbl.iter
              (fun seq u ->
                 if seq < high then begin
                   (* Karn's rule: only never-retransmitted messages
                      yield RTT samples — a retransmitted one's ack is
                      ambiguous about which copy it answers. *)
                   if u.u_attempts = 0 then observe_rtt t (tnow -. u.u_sent_at);
                   Hashtbl.remove lane.pl_unacked seq
                 end)
              (Hashtbl.copy lane.pl_unacked);
            (* Fast retransmit: the peer acks on every arrival, so an
               ack naming a seq we still hold means later messages got
               through while this one is missing — the peer is stuck
               behind the gap. Resend now rather than waiting out a
               backoff a partition may have inflated to the cap
               (rate-limited by min_rto against ack bursts). *)
            (match Hashtbl.find_opt lane.pl_unacked high with
             | Some u when tnow -. u.u_last_tx >= t.rto.Rto.min_rto ->
               u.u_attempts <- u.u_attempts + 1;
               u.u_due <- next_deadline t ~attempt:u.u_attempts;
               u.u_last_tx <- tnow;
               count_retransmission t;
               xmit_to t (Addr.endpoint src) (Msg.copy u.u_msg)
             | Some _ | None -> ())
          | None -> ())
       end
       else t.env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown kind %d" kind)
     with Msg.Truncated what ->
       t.env.Layer.trace ~category:"dropped" ("truncated: " ^ what))
  | Event.U_view v ->
    (* A view fabricated below (no membership layer underneath us in
       this stack position): synchronize lanes, then pass it on. *)
    change_epoch t ~epoch:(View.ltime v) ~members:(View.members_array v);
    t.env.Layer.emit_up ev
  | Event.U_problem _ | Event.U_merge_request _ | Event.U_merge_denied _ | Event.U_flush _
  | Event.U_flush_ok _ | Event.U_leave _ | Event.U_lost_message _ | Event.U_stable _
  | Event.U_system_error _ | Event.U_exit | Event.U_destroy | Event.U_packet _ ->
    t.env.Layer.emit_up ev

let create params env =
  let status_period = Params.get_float params "status_period" ~default:0.05 in
  let metrics = env.Layer.metrics in
  let t =
    { env;
      status_period;
      suspect_after = Params.get_float params "suspect_after" ~default:(status_period *. 5.0);
      nak_holdoff = Params.get_float params "nak_holdoff" ~default:(status_period /. 2.0);
      buffer_limit = Params.get_int params "buffer_limit" ~default:max_int;
      pair_buffer_limit = Params.get_int params "pair_buffer_limit" ~default:max_int;
      rto =
        Rto.create
          ~init:(Params.get_float params "rto_init" ~default:(status_period *. 2.0))
          ~min_rto:(Params.get_float params "rto_min" ~default:(status_period /. 2.0))
          ~max_rto:(Params.get_float params "rto_max" ~default:2.0)
          ();
      jitter = Params.get_float params "backoff_jitter" ~default:0.1;
      m_retransmits =
        Option.map (fun m -> Horus_obs.Metrics.counter m "nak.retransmits") metrics;
      m_rtt_est = Option.map (fun m -> Horus_obs.Metrics.gauge m "nak.rtt_est_us") metrics;
      m_backoff_hit =
        Option.map (fun m -> Horus_obs.Metrics.counter m "nak.backoff_max_hit") metrics;
      epoch = 0;
      members = [||];
      cast_next_seq = 0;
      cast_buffer = Hashtbl.create 64;
      cast_acks = Hashtbl.create 8;
      recv = Hashtbl.create 8;
      future_list = [];
      pairs = Hashtbl.create 8;
      last_heard = Hashtbl.create 8;
      suspected = Hashtbl.create 8;
      stop_timer = (fun () -> ());
      naks_sent = 0;
      retransmissions = 0;
      placeholders = 0;
      duplicates = 0 }
  in
  t.stop_timer <- Layer.every env ~period:status_period (on_timer t);
  (* Fused form. Sends always fuse (a cast is stamped and buffered
     unconditionally). Deliveries fuse only for an exactly-in-order
     data cast of the current epoch with nothing buffered out of
     order — i.e. no gap, no NAK, no drain loop — and the commit
     replays the full path's effects: liveness bookkeeping, lane
     advance, and the RTT close-out for a gap a late original just
     closed. The check stashes what the commit needs; the two always
     run back to back within one fused delivery. *)
  env.Layer.fp_register (fun () ->
      let chk_src = ref (-1) in
      let chk_seq = ref 0 in
      Some
        { Layer.fp_send_ready = (fun ~len:_ -> true);
          fp_send =
            (fun seg ->
               let seq = t.cast_next_seq in
               t.cast_next_seq <- seq + 1;
               Seg.push_u32 seg seq;
               Seg.push_u32 seg t.epoch;
               Seg.push_u8 seg k_data_cast;
               Hashtbl.replace t.cast_buffer seq (Seg.to_msg seg);
               if Hashtbl.length t.cast_buffer > t.buffer_limit then begin
                 let oldest =
                   Hashtbl.fold (fun s _ acc -> Int.min s acc) t.cast_buffer max_int
                 in
                 Hashtbl.remove t.cast_buffer oldest
               end);
          fp_deliver_check =
            (fun ~rank:_ ~meta m ->
               Msg.pop_u8 m = k_data_cast
               && Msg.pop_u32 m = t.epoch
               && begin
                 let seq = Msg.pop_u32 m in
                 let src = src_of meta in
                 let lane = recv_lane t src in
                 seq = lane.cr_expected
                 && Hashtbl.length lane.cr_ooo = 0
                 && begin
                   chk_src := src;
                   chk_seq := seq;
                   true
                 end
               end);
          fp_deliver_commit =
            (fun ~rank:_ ~meta:_ _ ->
               let src = !chk_src in
               heard t src;
               let lane = recv_lane t src in
               lane.cr_expected <- !chk_seq + 1;
               if
                 lane.cr_last_nak_at >= 0.0
                 && lane.cr_expected > lane.cr_last_nak_for
               then begin
                 observe_rtt t (now t -. lane.cr_last_nak_at);
                 lane.cr_last_nak_at <- -1.0;
                 lane.cr_last_nak_for <- -1;
                 lane.cr_nak_attempts <- 0
               end) });
  { Layer.name = "NAK";
    handle_down = handle_down t;
    handle_up = handle_up t;
    dump =
      (fun () ->
         [ Printf.sprintf "epoch=%d next_seq=%d buffered=%d" t.epoch t.cast_next_seq
             (Hashtbl.length t.cast_buffer);
           Printf.sprintf "naks=%d rexmit=%d placeholders=%d dups=%d" t.naks_sent
             t.retransmissions t.placeholders t.duplicates;
           Printf.sprintf "pairs=%d unacked=%d rto=%.3f" (Hashtbl.length t.pairs)
             (Hashtbl.fold (fun _ l acc -> acc + Hashtbl.length l.pl_unacked) t.pairs 0)
             (Rto.rto t.rto) ]);
    inert = false;
    stop = (fun () -> t.stop_timer ()) }
