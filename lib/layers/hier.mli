(** HIER: representative election for hierarchical composition. Runs
    above a membership layer; the sub-group coordinator is the
    representative, re-derived on every view change and announced
    to/withdrawn from the rendezvous service under the parent group's
    address so bridging harnesses can locate it. Transparent to data
    and views within the sub-group. Parameters: [parent] (parent group
    id; -1 = elect without advertising), [sub] (sub-group index, for
    diagnostics). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
