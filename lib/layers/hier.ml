(* HIER: the sub-group side of hierarchical composition.

   A flat MBRSHIP group is all-to-all and tops out at dozens of
   members; past that, the population is split into sub-groups of
   bounded size, and one representative per sub-group bridges into a
   parent group (LEGO composition: HIER:MBRSHIP:NAK:COM per sub-group,
   a plain MBRSHIP stack among the representatives).

   This layer runs above the membership layer of a sub-group and owns
   representative election: the representative is the sub-group
   coordinator (the oldest member — the same stable choice the
   membership layer already elects, so no extra agreement round is
   needed; every member deduces the representative from the view). On
   each view change it re-derives the representative and, when a
   [parent] group is named, announces/withdraws itself with the
   rendezvous service under the parent's address — how the bridging
   harness (and MERGE-style layers in the parent) locate the current
   representatives. Data and views pass through untouched: within its
   sub-group HIER is transparent, which is exactly its row in the
   property algebra (provides nothing, inherits everything).

   Params: [parent] — the parent group id (default -1: elect but do
   not advertise); [sub] — this sub-group's index, for diagnostics. *)

open Horus_msg
open Horus_hcpi

type state = {
  env : Layer.env;
  parent : int;
  sub : int;
  mutable view : View.t option;
  mutable rep : Addr.endpoint option;   (* current representative *)
  mutable announced : bool;             (* we hold a rendezvous entry *)
  mutable rep_changes : int;
  mutable rep_lost_at : float option;   (* flush began with the rep failed *)
  m_rep_changes : Horus_obs.Metrics.counter option;
  m_rebridge : Horus_obs.Metrics.histogram option;
}

let is_rep t =
  match t.rep with
  | Some r -> Addr.equal_endpoint r t.env.Layer.endpoint
  | None -> false

let parent_addr t = Addr.group t.parent

let withdraw t =
  if t.announced then begin
    t.announced <- false;
    t.env.Layer.rendezvous.Layer.withdraw (parent_addr t) t.env.Layer.endpoint
  end

let announce t =
  if (not t.announced) && t.parent >= 0 then begin
    t.announced <- true;
    t.env.Layer.rendezvous.Layer.announce (parent_addr t) t.env.Layer.endpoint
  end

let on_view t v =
  t.view <- Some v;
  let rep = View.coordinator v in
  let changed =
    match t.rep with Some r -> not (Addr.equal_endpoint r rep) | None -> true
  in
  if changed then begin
    (* Re-bridge latency: the clock started when a flush announced the
       representative among its failed endpoints; it stops at the view
       that installs the successor. *)
    (match t.rep_lost_at with
     | Some t0 ->
       Option.iter
         (fun h ->
            Horus_obs.Metrics.observe h
              (Horus_sim.Engine.now t.env.Layer.engine -. t0))
         t.m_rebridge
     | None -> ());
    t.rep <- Some rep;
    t.rep_changes <- t.rep_changes + 1;
    Option.iter Horus_obs.Metrics.incr t.m_rep_changes;
    t.env.Layer.trace ~category:"hier"
      (Format.asprintf "sub=%d representative %a%s" t.sub Addr.pp_endpoint rep
         (if is_rep t then " (me)" else ""))
  end;
  t.rep_lost_at <- None;
  if is_rep t then announce t else withdraw t

(* A flush names its failed endpoints before the successor view is
   agreed; if the current representative is among them, the sub-group
   is un-bridged from this instant until the next view installs a new
   coordinator. *)
let on_flush t failed =
  match t.rep with
  | Some r when List.exists (Addr.equal_endpoint r) failed ->
    if t.rep_lost_at = None then
      t.rep_lost_at <- Some (Horus_sim.Engine.now t.env.Layer.engine)
  | _ -> ()

let create params env =
  let t =
    { env;
      parent =
        (* In the parent group itself (representatives reuse their
           endpoint's spec) HIER must not announce into its own gid:
           demote to elect-only. *)
        (let p = Params.get_int params "parent" ~default:(-1) in
         if p = Addr.group_id env.Layer.group then -1 else p);
      sub = Params.get_int params "sub" ~default:0;
      view = None;
      rep = None;
      announced = false;
      rep_changes = 0;
      rep_lost_at = None;
      m_rep_changes =
        Option.map
          (fun m -> Horus_obs.Metrics.counter m "hier.rep_changes")
          env.Layer.metrics;
      m_rebridge =
        Option.map
          (fun m -> Horus_obs.Metrics.histogram m "hier.rebridge_time")
          env.Layer.metrics }
  in
  let handle_up (ev : Event.up) =
    (match ev with
     | Event.U_view v -> on_view t v
     | Event.U_flush failed -> on_flush t failed
     | Event.U_exit -> withdraw t
     | _ -> ());
    env.Layer.emit_up ev
  in
  { Layer.name = "HIER";
    handle_down = env.Layer.emit_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "sub=%d parent=%d rep=%s me=%b changes=%d" t.sub t.parent
             (match t.rep with
              | Some r -> string_of_int (Addr.endpoint_id r)
              | None -> "-")
             (is_rep t) t.rep_changes ]);
    inert = false;
    stop = (fun () -> withdraw t) }
