(** Per-view delivery bookkeeping shared by the membership-family
    layers: contiguous per-origin delivery with an out-of-order stash,
    the unstable-message store used by flush recovery, and the wire
    codecs for receive vectors and message copies. *)

open Horus_msg
open Horus_hcpi

type t

val create : unit -> t
val reset : t -> unit
val record : t -> origin:int -> seq:int -> string -> unit
val size : t -> int
val next_expected : t -> int -> int

val ooo_pending : t -> int
(** Messages stashed ahead of sequence, over all origins. *)

val advance : t -> origin:int -> seq:int -> payload:string -> unit
(** {!accept}'s in-order branch with an empty stash: advance the
    origin's lane past [seq] and log [payload] — the fused-delivery
    commit. *)

val accept :
  t ->
  origin:int -> seq:int -> rank:int ->
  Msg.t -> Event.meta ->
  deliver:(rank:int -> Msg.t -> Event.meta -> unit) ->
  unit
(** Deliver in per-origin sequence; stash ahead-of-sequence arrivals;
    drop duplicates. *)

val vector : t -> (int * int) list
(** Sorted (origin, next expected) pairs — a flush receive vector. *)

val copies : t -> (int * int * string) list
(** Every logged message, sorted — a flush reply's offered copies. *)

val gc : t -> floor_of:(int -> int) -> unit
(** Drop logged messages below the per-origin stability floor. *)

val push_pairs : Msg.t -> (int * int) list -> unit
val pop_pairs : Msg.t -> (int * int) list
val push_copies : Msg.t -> (int * int * string) list -> unit
val pop_copies : Msg.t -> (int * int * string) list

val cut_and_union :
  own:t ->
  ((int * int) list * (int * int * string) list) list ->
  (int, int) Hashtbl.t * (int * int, string) Hashtbl.t
(** Maximal per-origin cut over the replies, and the union message
    store — what a flush coordinator computes before forwarding. *)

val missing_for :
  cut:(int, int) Hashtbl.t ->
  everything:(int * int, string) Hashtbl.t ->
  (int * int) list ->
  (int * int * string) list
(** The copies one replier is missing under the cut. *)
