(* Registration of the layer library into the HCPI registry.

   [register_all] is idempotent; World.create calls it, so any program
   using the public API can name these layers in stack specs. The
   protocol_type strings are the classification from Figure 1. *)

open Horus_hcpi

let registered = ref false

let entries () =
  [ ("COM", "signaling", "bottom adapter: raw network to HCPI; source addresses; envelope check",
     Com.create);
    ("NOOP", "tracing", "inert pass-through layer, for layering-overhead experiments", Noop.create);
    ("TRACE", "tracing", "event and byte counters for debugging and statistics", Trace_layer.create);
    ("CHKSUM", "checksumming", "FNV checksum; drops garbled messages", Chksum.create);
    ("SIGN", "signing", "keyed MAC; drops forged messages", Sign.create);
    ("ENCRYPT", "encryption", "XOR keystream privacy with per-message nonces", Encrypt.create);
    ("COMPRESS", "compression", "run-length encoding when it shrinks the message", Compress.create);
    ("NAK", "retransmission", "reliable FIFO casts and sends via seqnos and negative acks",
     Nak.create);
    ("NNAK", "ordering", "prioritized-effort delivery lanes", Nnak.create);
    ("FRAG", "fragment/assem.", "large messages into fragments; 1-bit header; needs FIFO",
     Frag.create);
    ("NFRAG", "fragment/assem.", "fragmentation tolerant of reordering; indexed fragments",
     Nfrag.create);
    ("FC", "flow control", "token-bucket rate limiting of outgoing data", Fc.create);
    ("MBRSHIP", "membership",
     "consistent views with virtual synchrony: coordinator flush, join-as-merge, leaves",
     Mbrship.create);
    ("BMS", "membership",
     "basic membership: consistent views, semi-synchrony, no unstable forwarding",
     Mbrship.create_bms);
    ("TOTAL", "ordering", "token-based totally ordered multicast over virtual synchrony",
     Total.create);
    ("ORDER_CAUSAL", "ordering", "causally ordered multicast via vector timestamps",
     Order_causal.create);
    ("ORDER_SAFE", "ordering", "safe delivery: hold until the stability matrix clears",
     Order_safe.create);
    ("STABLE", "logging", "application-defined stability matrix via ack-vector gossip",
     Stable.create);
    ("PINWHEEL", "logging", "stability matrix via a rotating aggregator (cheaper at scale)",
     Pinwheel.create);
    ("MERGE", "resource location", "automatic view merging via the rendezvous service",
     Merge_layer.create);
    ("HIER", "membership",
     "hierarchical sub-grouping: coordinator-elected representatives bridge to a parent group",
     Hier.create);
    ("FLUSH", "membership",
     "coordinator-driven unstable-message recovery over BMS (virtual synchrony, composed)",
     Flush_layer.create);
    ("VSS", "membership",
     "decentralized all-to-all unstable-message recovery over BMS (virtual synchrony)",
     Vss.create);
    ("LOG", "logging", "stable-storage logging and replay: tolerance of total crash failures",
     Log_layer.create);
    ("CLOCKSYNC", "synchronization", "Cristian clock synchronization to the coordinator",
     Clocksync.create);
    ("DEADLINE", "real-time", "drop casts older than a delivery budget; report ages",
     Deadline.create);
    ("ACCOUNT", "accounting", "per-source message and byte usage ledger", Account.create);
    ("BATCH", "flow control", "batch casts within a window into one wire message", Batch.create) ]

let register_all () =
  if not !registered then begin
    registered := true;
    List.iter
      (fun (name, protocol_type, description, ctor) ->
         Registry.register ~name ~protocol_type ~description ctor)
      (entries ())
  end
