(* COM: the bottom adapter layer (Section 7).

   COM translates the raw best-effort network (property P1) into the
   Common Protocol Interface. Going down, it stamps each message with a
   small envelope — magic, length, kind, source endpoint — and unicasts
   a copy to every destination. Coming up, it verifies the envelope
   (P10: gross corruption, truncation and byte reordering are caught by
   the magic/length check), recovers the source address (P11), filters
   casts from endpoints outside the current destination set, and
   delivers U_cast / U_send with the source's rank.

   The destination set is a plain list installed with the view
   downcall; COM attaches no consistency semantics to it (Section 7:
   "a view at these layers is nothing but the set of destination
   endpoints for multicast messages"). *)

open Horus_msg
open Horus_hcpi

let magic = 0x4855  (* "HU" *)

type kind = Cast | Send

let kind_code = function Cast -> 0 | Send -> 1

let kind_of_code = function 0 -> Some Cast | 1 -> Some Send | _ -> None

type state = {
  env : Layer.env;
  filter : bool;          (* drop casts from non-members *)
  loopback : bool;        (* deliver own casts locally, without the net *)
  mutable dests : Addr.endpoint array;  (* current destination set *)
  mutable sent : int;
  mutable received : int;
  mutable rejected : int; (* bad envelope *)
  mutable filtered : int; (* spurious casts *)
}

(* meta key under which COM exposes the raw source endpoint id; layers
   above use it when the source is outside the view (rank -1). *)
let src_meta = "src_eid"

let push_envelope t ~kind m =
  Wire.push_endpoint m t.env.Layer.endpoint;
  Msg.push_u8 m (kind_code kind);
  Msg.push_u16 m (Msg.length m land 0xffff);
  Msg.push_u16 m magic

let transmit t m dst =
  t.sent <- t.sent + 1;
  t.env.Layer.transport.Layer.xmit ~dst (Msg.to_bytes m)

let rank_of_dest t src =
  let rec loop i =
    if i >= Array.length t.dests then None
    else if Addr.equal_endpoint t.dests.(i) src then Some i
    else loop (i + 1)
  in
  loop 0

let deliver_local t ~kind m =
  (* Loopback copy of an outgoing message: what the network would have
     delivered to ourselves, without the latency. *)
  let rank =
    match rank_of_dest t t.env.Layer.endpoint with
    | Some r -> r
    | None -> -1
  in
  let meta = [ (src_meta, Addr.endpoint_id t.env.Layer.endpoint) ] in
  match kind with
  | Cast -> t.env.Layer.emit_up (Event.U_cast (rank, m, meta))
  | Send -> t.env.Layer.emit_up (Event.U_send (rank, m, meta))

let handle_down t (ev : Event.down) =
  match ev with
  | Event.D_cast m ->
    let self = t.env.Layer.endpoint in
    let self_is_dest = Array.exists (Addr.equal_endpoint self) t.dests in
    let local = if t.loopback && self_is_dest then Some (Msg.copy m) else None in
    push_envelope t ~kind:Cast m;
    Array.iter
      (fun dst -> if not (Addr.equal_endpoint dst self) then transmit t m dst)
      t.dests;
    Option.iter (fun l -> deliver_local t ~kind:Cast l) local
  | Event.D_send (dsts, m) ->
    let self = t.env.Layer.endpoint in
    let local =
      if t.loopback && List.exists (Addr.equal_endpoint self) dsts then Some (Msg.copy m)
      else None
    in
    push_envelope t ~kind:Send m;
    List.iter
      (fun dst -> if not (Addr.equal_endpoint dst self) then transmit t m dst)
      dsts;
    Option.iter (fun l -> deliver_local t ~kind:Send l) local
  | Event.D_view v ->
    t.dests <- View.members_array v
  | Event.D_join contact ->
    (* Without a membership layer above, COM fabricates a best-effort
       destination set: ourselves, plus the contact if given. No
       consistency is implied. *)
    let self = t.env.Layer.endpoint in
    let members =
      match contact with
      | None -> [ self ]
      | Some c ->
        if Addr.equal_endpoint c self then [ self ]
        else List.sort Addr.compare_endpoint [ c; self ]
    in
    let v = View.create ~group:t.env.Layer.group ~ltime:0 ~members in
    t.dests <- View.members_array v;
    t.env.Layer.emit_up (Event.U_view v)
  | Event.D_leave ->
    t.dests <- [||];
    t.env.Layer.emit_up Event.U_exit
  | Event.D_dump -> ()
  | Event.D_ack _ | Event.D_stable _ | Event.D_flush_ok ->
    (* Stability/flush cooperation downcalls are harmless without a
       consumer; absorb quietly (stability layers are optional). *)
    t.env.Layer.trace ~category:"absorbed" (Event.down_name ev)
  | Event.D_merge _ | Event.D_merge_granted _ | Event.D_merge_denied _
  | Event.D_flush _ | Event.D_suspect _ ->
    (* Membership downcalls reaching the floor mean the stack has no
       membership layer: report it (Table 2's SYSTEM_ERROR). *)
    t.env.Layer.trace ~category:"absorbed" (Event.down_name ev);
    t.env.Layer.emit_up
      (Event.U_system_error
         (Printf.sprintf "%s downcall requires a membership layer" (Event.down_name ev)))

let handle_up t (ev : Event.up) =
  match ev with
  | Event.U_packet (_node, m) ->
    t.received <- t.received + 1;
    let ok =
      try
        let mg = Msg.pop_u16 m in
        let len = Msg.pop_u16 m in
        if mg <> magic || len <> Msg.length m land 0xffff then None
        else
          let kind = kind_of_code (Msg.pop_u8 m) in
          let src = Wire.pop_endpoint m in
          match kind with
          | None -> None
          | Some k -> Some (k, src)
      with Msg.Truncated _ -> None
    in
    (match ok with
     | None ->
       t.rejected <- t.rejected + 1;
       t.env.Layer.trace ~category:"rejected" "bad envelope"
     | Some (kind, src) ->
       let rank = rank_of_dest t src in
       let meta = [ (src_meta, Addr.endpoint_id src) ] in
       (match (kind, rank) with
        | Cast, None when t.filter ->
          t.filtered <- t.filtered + 1;
          t.env.Layer.trace ~category:"filtered"
            (Format.asprintf "cast from non-member %a" Addr.pp_endpoint src)
        | Cast, r ->
          t.env.Layer.emit_up (Event.U_cast (Option.value r ~default:(-1), m, meta))
        | Send, r ->
          t.env.Layer.emit_up (Event.U_send (Option.value r ~default:(-1), m, meta))))
  | Event.U_view _ | Event.U_cast _ | Event.U_send _ | Event.U_merge_request _
  | Event.U_merge_denied _ | Event.U_flush _ | Event.U_flush_ok _ | Event.U_leave _
  | Event.U_lost_message _ | Event.U_stable _ | Event.U_problem _
  | Event.U_system_error _ | Event.U_exit | Event.U_destroy ->
    (* Nothing sits below COM that could produce these; pass defensively. *)
    t.env.Layer.emit_up ev

let dump t () =
  [ Format.asprintf "dests=[%a]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Addr.pp_endpoint)
      (Array.to_list t.dests);
    Printf.sprintf "sent=%d received=%d rejected=%d filtered=%d" t.sent t.received t.rejected
      t.filtered ]

(* Fused form (bottom adapter): frame-and-transmit on the way down,
   envelope recognition on the way up. The compile captures the
   destination set; the physical-equality guard in [fpb_send_ready]
   catches replacements no view event announces (D_join, D_leave).
   The gathered wire image is shared across destinations — every
   transport copies on ingestion, so sharing is safe where the full
   path's per-destination [Msg.to_bytes] would have copied. *)
let compile_fastpath t () =
  if Array.length t.dests = 0 then None
  else begin
    let dests = t.dests in
    let self = t.env.Layer.endpoint in
    let self_eid = Addr.endpoint_id self in
    let self_rank = rank_of_dest t self in
    let local_wanted = t.loopback && self_rank <> None in
    let send_meta = [ (src_meta, self_eid) ] in
    Some
      { Layer.fpb_send_ready = (fun () -> t.dests == dests);
        fpb_cast =
          (fun seg ->
             (* local copy before the envelope, as in handle_down *)
             let local = if local_wanted then Some (Seg.to_msg seg) else None in
             Seg.push_u32 seg self_eid;
             Seg.push_u8 seg (kind_code Cast);
             Seg.push_u16 seg (Seg.length seg land 0xffff);
             Seg.push_u16 seg magic;
             let wire = Seg.to_wire seg in
             Array.iter
               (fun dst ->
                  if not (Addr.equal_endpoint dst self) then begin
                    t.sent <- t.sent + 1;
                    t.env.Layer.transport.Layer.xmit ~dst wire
                  end)
               dests;
             match (local, self_rank) with
             | Some lm, Some r -> Some (lm, r, send_meta)
             | _ -> None);
        fpb_parse =
          (fun m ->
             let mg = Msg.pop_u16 m in
             let len = Msg.pop_u16 m in
             if mg <> magic || len <> Msg.length m land 0xffff then None
             else if Msg.pop_u8 m <> kind_code Cast then None
             else
               let src = Wire.pop_endpoint m in
               (* members only: rank -1 (and the filter) stay on the
                  full path *)
               match rank_of_dest t src with
               | None -> None
               | Some r -> Some (r, [ (src_meta, Addr.endpoint_id src) ]));
        fpb_parsed = (fun () -> t.received <- t.received + 1) }
  end

let create params env =
  let t =
    { env;
      filter = Params.get_bool params "filter" ~default:true;
      loopback = Params.get_bool params "loopback" ~default:true;
      dests = [||];
      sent = 0;
      received = 0;
      rejected = 0;
      filtered = 0 }
  in
  env.Layer.fp_register_bottom (compile_fastpath t);
  { Layer.name = "COM";
    handle_down = handle_down t;
    handle_up = handle_up t;
    dump = dump t;
    inert = false;
    stop = (fun () -> ()) }
