(* TOTAL: token-based totally ordered multicast (Section 7).

   During normal operation a rotating token carries the next global
   sequence number; only the holder casts data, stamped with
   consecutive numbers, and receivers deliver in number order. A member
   with messages to send casts a token request; the holder hands the
   token over once its own backlog has drained — the "oracle" that
   picks the next holder is the request queue.

   TOTAL requires virtual synchrony below and needs no failure detector
   of its own: if the token is lost with a crashed holder, undelivered
   messages are buffered, and at the view change every survivor holds
   the same buffered set (that is exactly virtual synchrony), so a
   deterministic rule — deliver by (sequence, source rank), token to
   the lowest-ranked member — resynchronizes everyone without any
   agreement protocol. The paper notes this sidesteps the FLP
   impossibility because MBRSHIP supplies the failure information. *)

open Horus_msg
open Horus_hcpi

let k_ordered = 0
let k_treq = 1
let k_token = 2

type state = {
  env : Layer.env;
  mutable my_rank : int;
  mutable holder : int;            (* believed token holder (rank) *)
  mutable token_gen : int;         (* highest handover generation seen *)
  mutable next_gseq : int;         (* holder only: next number to assign *)
  mutable next_deliver : int;
  buffer : (int, int * Msg.t * Event.meta) Hashtbl.t;  (* gseq -> rank, msg, meta *)
  pending : Msg.t Queue.t;         (* my casts awaiting the token *)
  mutable requested : bool;
  mutable requests : int list;     (* ranks wanting the token, oldest first *)
  mutable casts_ordered : int;
  mutable token_passes : int;
}

let have_token t = t.my_rank >= 0 && t.holder = t.my_rank

let cast_down t m = t.env.Layer.emit_down (Event.D_cast m)

(* Handovers carry a strictly increasing generation. The layer below
   only orders casts per origin, so two handovers from different ranks
   can arrive in either order (a dropped one is repaired late); without
   the generation a stale handover would overwrite the holder belief —
   or make the actual holder abandon the token — and deadlock the
   group. Only the unique holder ever increments, so the genuine chain
   is strictly increasing and the latest always wins. *)
let send_token t ~to_rank =
  (* The token is moving: not steady state. *)
  t.env.Layer.fp_invalidate ();
  t.token_passes <- t.token_passes + 1;
  t.token_gen <- t.token_gen + 1;
  t.holder <- to_rank;
  let m = Msg.empty () in
  Msg.push_u32 m t.next_gseq;
  Msg.push_u32 m t.token_gen;
  Msg.push_u16 m to_rank;
  Msg.push_u8 m k_token;
  cast_down t m

(* Holder: cast everything pending, then hand the token to the first
   requester, if any. *)
let drain t =
  if have_token t then begin
    while not (Queue.is_empty t.pending) do
      let m = Queue.pop t.pending in
      Msg.push_u32 m t.next_gseq;
      Msg.push_u8 m k_ordered;
      t.next_gseq <- t.next_gseq + 1;
      t.casts_ordered <- t.casts_ordered + 1;
      cast_down t m
    done;
    t.requested <- false;
    match t.requests with
    | r :: rest when r <> t.my_rank ->
      t.requests <- rest;
      send_token t ~to_rank:r
    | r :: rest when r = t.my_rank -> t.requests <- rest
    | _ -> ()
  end

let request_token t =
  if (not t.requested) && not (have_token t) then begin
    t.requested <- true;
    let m = Msg.empty () in
    Msg.push_u16 m t.my_rank;
    Msg.push_u8 m k_treq;
    cast_down t m
  end

let rec deliver_ready t =
  match Hashtbl.find_opt t.buffer t.next_deliver with
  | Some (rank, m, meta) ->
    Hashtbl.remove t.buffer t.next_deliver;
    t.next_deliver <- t.next_deliver + 1;
    t.env.Layer.emit_up (Event.U_cast (rank, m, meta));
    deliver_ready t
  | None -> ()

(* View change: every survivor holds the same buffered set (virtual
   synchrony below), so the deterministic flush order — ascending
   (gseq, source rank) — agrees everywhere; then the token restarts at
   the lowest-ranked member. *)
let on_view t v =
  let leftovers =
    Hashtbl.fold (fun g (rank, m, meta) acc -> (g, rank, m, meta) :: acc) t.buffer []
    |> List.sort (fun (g1, r1, _, _) (g2, r2, _, _) ->
        let c = Int.compare g1 g2 in
        if c <> 0 then c else Int.compare r1 r2)
  in
  Hashtbl.reset t.buffer;
  List.iter (fun (_, rank, m, meta) -> t.env.Layer.emit_up (Event.U_cast (rank, m, meta)))
    leftovers;
  t.my_rank <- Option.value (View.rank_of v t.env.Layer.endpoint) ~default:(-1);
  t.holder <- 0;
  t.token_gen <- 0;
  t.next_gseq <- 0;
  t.next_deliver <- 0;
  t.requested <- false;
  t.requests <- [];
  t.env.Layer.emit_up (Event.U_view v);
  if not (Queue.is_empty t.pending) then begin
    if have_token t then drain t else request_token t
  end

let create (_ : Params.t) env =
  let t =
    { env;
      my_rank = -1;
      holder = 0;
      token_gen = 0;
      next_gseq = 0;
      next_deliver = 0;
      buffer = Hashtbl.create 32;
      pending = Queue.create ();
      requested = false;
      requests = [];
      casts_ordered = 0;
      token_passes = 0 }
  in
  let handle_down (ev : Event.down) =
    match ev with
    | Event.D_cast m ->
      Queue.push m t.pending;
      if have_token t then drain t else request_token t
    | _ -> env.Layer.emit_down ev
  in
  (* Fused form: only the token holder with a drained backlog and no
     outstanding requests can fuse a send (the assignment is then
     exactly what [drain] would stamp); a delivery fuses only for the
     very next global sequence number with nothing else buffered. Any
     token movement invalidates the compiled path. *)
  env.Layer.fp_register (fun () ->
      Some
        { Layer.fp_send_ready =
            (fun ~len:_ ->
               have_token t && Queue.is_empty t.pending && t.requests = []);
          fp_send =
            (fun seg ->
               Seg.push_u32 seg t.next_gseq;
               Seg.push_u8 seg k_ordered;
               t.next_gseq <- t.next_gseq + 1;
               t.casts_ordered <- t.casts_ordered + 1;
               t.requested <- false);
          fp_deliver_check =
            (fun ~rank:_ ~meta:_ m ->
               Msg.pop_u8 m = k_ordered
               && Msg.pop_u32 m = t.next_deliver
               && Hashtbl.length t.buffer = 0);
          fp_deliver_commit =
            (fun ~rank:_ ~meta:_ _ -> t.next_deliver <- t.next_deliver + 1) });
  let handle_up (ev : Event.up) =
    match ev with
    | Event.U_cast (rank, m, meta) ->
      (try
         let kind = Msg.pop_u8 m in
         if kind = k_ordered then begin
           let gseq = Msg.pop_u32 m in
           Hashtbl.replace t.buffer gseq (rank, m, meta);
           deliver_ready t
         end
         else if kind = k_treq then begin
           let req_rank = Msg.pop_u16 m in
           if not (List.mem req_rank t.requests) then
             t.requests <- t.requests @ [ req_rank ];
           if have_token t && Queue.is_empty t.pending then drain t
         end
         else if kind = k_token then begin
           let to_rank = Msg.pop_u16 m in
           let gen = Msg.pop_u32 m in
           let gseq = Msg.pop_u32 m in
           if gen > t.token_gen then begin
             env.Layer.fp_invalidate ();
             t.token_gen <- gen;
             t.holder <- to_rank;
             t.requests <- List.filter (fun r -> r <> to_rank) t.requests;
             if to_rank = t.my_rank then begin
               t.next_gseq <- gseq;
               drain t
             end
           end
           else
             env.Layer.trace ~category:"stale"
               (Printf.sprintf "token gen %d <= %d" gen t.token_gen)
         end
         else env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown kind %d" kind)
       with Msg.Truncated what -> env.Layer.trace ~category:"dropped" ("truncated " ^ what))
    | Event.U_view v -> on_view t v
    | _ -> env.Layer.emit_up ev
  in
  { Layer.name = "TOTAL";
    handle_down;
    handle_up;
    dump =
      (fun () ->
         [ Printf.sprintf "rank=%d holder=%d gen=%d next_deliver=%d buffered=%d pending=%d"
             t.my_rank t.holder t.token_gen t.next_deliver (Hashtbl.length t.buffer)
             (Queue.length t.pending);
           Printf.sprintf "ordered=%d token_passes=%d" t.casts_ordered t.token_passes ]);
    inert = false;
    stop = (fun () -> ()) }
