(* MBRSHIP: group membership and virtual synchrony (Section 5).

   MBRSHIP simulates an environment in which members can only fail
   (never be slow or disconnected) and messages are not lost. Each
   member holds a view — an ordered member list — and every member of a
   view either installs the same next view or is excluded from it.
   Messages cast in a view are delivered to all surviving members of
   that view before the next view installs: virtual synchrony.

   At the heart of the layer is the flush protocol of Figure 2. The
   coordinator — the oldest surviving member, an election that needs no
   messages — sends FLUSH_REQ to all survivors. Each survivor stops
   casting, raises the FLUSH upcall, and once the application (or a
   FLUSH layer above) answers with the flush_ok downcall, replies with
   its receive vector and copies of its unstable messages. The
   coordinator computes the maximal cut, forwards whatever any survivor
   is missing, and installs the next view.

   Joins are merges of a singleton view (Section 11: "member join
   (actually, view merge)"); partition merges run each side's flush
   before the union view installs, so messages stay within the view
   they were cast in. Failure suspicions arrive from the layer below
   (PROBLEM upcalls), from the application (the suspect downcall — the
   external failure detector of Section 5), or transitively from other
   members.

   With [forward_unstable=false] the same machinery provides only
   consistent views and semi-synchrony — that variant is registered as
   the BMS layer, over which a separate FLUSH layer can re-create full
   virtual synchrony compositionally (Table 3). *)

open Horus_msg
open Horus_hcpi

let k_data = 0
let k_stab = 1
let k_flush_req = 2
let k_flush_reply = 3
let k_fwd = 4
let k_view_install = 5
let k_merge_req = 6
let k_merge_grant = 7
let k_merge_deny = 8
let k_merge_ready = 9
let k_suspect = 10
let k_leave_req = 11
let k_app_send = 12  (* subset sends of layers above, passing through *)
let k_halt = 13      (* primary-partition mode: minority must halt *)  (* subset sends of layers above, passing through *)

module ESet = Addr.Endpoint_set

type reply = {
  rep_vector : (int * int) list;          (* origin eid -> next expected seq *)
  rep_copies : (int * int * string) list; (* origin eid, seq, payload *)
}

type flush_ctx = {
  fl_coord : Addr.endpoint;
  fl_round : int;
  fl_failed : Addr.endpoint list;
  fl_leavers : Addr.endpoint list;
  fl_joiners : Addr.endpoint list;
  (* requester-side merge: where to report MERGE_READY when the flush
     completes instead of installing a view *)
  fl_merge_into : Addr.endpoint option;
  (* coordinator bookkeeping *)
  mutable fl_waiting : ESet.t;
  mutable fl_replies : (int * reply) list;  (* replier eid -> reply *)
  (* member bookkeeping *)
  mutable fl_needs_reply : bool;   (* emitted U_flush, awaiting D_flush_ok *)
  mutable fl_replied : bool;       (* FLUSH_REPLY sent for this round *)
}

type merge_wait = {
  mw_contact : Addr.endpoint;
  mutable mw_attempts : int;
}

type phase =
  | Idle
  | Normal
  | Flushing of flush_ctx
  | Exited

type state = {
  env : Layer.env;
  forward_unstable : bool;
  ignore_stragglers : bool;
      (* Section 5's "ignore messages from supposedly failed members"
         rule. Disabling it (ignore_stragglers=false) deliberately
         reintroduces the straggler race that lib/model/flush_model.ml
         and the lib/check explorer both catch — kept as a switch so
         the systematic tests can demonstrate the counterexample on
         the production stack. *)
  primary_partition : bool;
      (* Section 9: Isis-style progress restriction — only a partition
         holding a strict majority of the previous view may install the
         next view; minority members halt (EXIT) and must rejoin. With
         [false] (default), every partition makes progress: the
         extended-virtual-synchrony style. *)
  auto_merge : bool;
  stab_period : float;
  merge_retry : float;
  merge_abort : float;
      (* a requester-side merge flush (blocked awaiting the grantor's
         install) aborts after this long: the grantor may have died,
         and it is outside our view, so no suspicion will ever fire *)
  suspect_grace : float;
      (* a detector suspicion only takes effect after the member stays
         silent this long; 0 = immediate (transient chaos-induced loss
         below must not rule a live member out) *)
  mutable phase : phase;
  mutable view : View.t option;
  mutable next_seq : int;                       (* my casts, this view *)
  log : Delivery_log.t;                         (* per-view delivery + unstable store *)
  acked : (int * int, int) Hashtbl.t;           (* (origin, peer) -> peer's delivered *)
  mutable suspects : ESet.t;
  pending_suspects : (int, Addr.endpoint) Hashtbl.t;
      (* suspicions inside their grace window, keyed by endpoint id;
         hearing anything from the member cancels the entry *)
  mutable failed_set : ESet.t;
      (* endpoints a view install removed: the Section 5 ignore rule's
         post-view half. A straggler cast from one of these would
         surface at whichever members it happens to reach, in a view
         its origin is not part of — so data from them is dropped
         until a later install (a merge) re-admits them. *)
  pending_casts : Msg.t Queue.t;                (* casts issued while blocked *)
  mutable round_counter : int;
  mutable merge_wait : merge_wait option;       (* outgoing merge in progress *)
  mutable pending_grant : (int * Event.merge_request) list;  (* req awaiting app decision *)
  mutable granted_peer : (Addr.endpoint * Addr.endpoint list) option;
      (* requester coordinator we granted, and its member list *)
  mutable peer_epoch : int;  (* requesting partition's epoch, from MERGE_READY *)
  mutable pending_leavers : Addr.endpoint list;  (* leave requests queued behind a flush *)
  mutable req_counter : int;
  mutable stop_timer : unit -> unit;
  mutable views_installed : int;
  mutable flushes_run : int;
  mutable ctl_sent : int;  (* membership-protocol unicasts, for the ablation bench *)
}

let me t = t.env.Layer.endpoint

let my_eid t = Addr.endpoint_id (me t)

let src_of meta = Option.value (Event.meta_find meta Com.src_meta) ~default:(-1)

let epoch t = match t.view with Some v -> View.ltime v | None -> -1

let members t = match t.view with Some v -> View.members v | None -> []

let is_suspect t e = ESet.mem e t.suspects

(* The message-free election: oldest member of the view that is not
   suspected. *)
let coordinator t =
  List.find_opt (fun m -> not (is_suspect t m)) (members t)

let i_am_coordinator t =
  match coordinator t with
  | Some c -> Addr.equal_endpoint c (me t)
  | None -> false

let blocked t = match t.phase with Flushing _ -> true | Idle | Normal | Exited -> false

let unicast t dst m =
  t.ctl_sent <- t.ctl_sent + 1;
  t.env.Layer.emit_down (Event.D_send ([ dst ], m))

(* --- wire helpers (shared with the other membership layers) --- *)

let push_pairs = Delivery_log.push_pairs
let pop_pairs = Delivery_log.pop_pairs
let push_copies = Delivery_log.push_copies
let pop_copies = Delivery_log.pop_copies

(* --- delivery --- *)

let rank_of_origin t origin =
  match t.view with
  | None -> -1
  | Some v -> Option.value (View.rank_of v (Addr.endpoint origin)) ~default:(-1)

(* Deliver origin's data cast in sequence (shared bookkeeping;
   forwarded copies can race direct copies). *)
let accept_data t ~origin ~seq ~rank m meta =
  Delivery_log.accept t.log ~origin ~seq ~rank m meta ~deliver:(fun ~rank m meta ->
      let rank = if rank >= 0 then rank else rank_of_origin t origin in
      t.env.Layer.emit_up (Event.U_cast (rank, m, meta)))

(* --- stability gossip and log GC --- *)

let stab_vector t = Delivery_log.vector t.log

let gc_store t =
  match t.view with
  | None -> ()
  | Some v ->
    let floor_of origin =
      List.fold_left
        (fun acc m ->
           let peer = Addr.endpoint_id m in
           let d =
             if peer = my_eid t then Delivery_log.next_expected t.log origin
             else Option.value (Hashtbl.find_opt t.acked (origin, peer)) ~default:0
           in
           Int.min acc d)
        max_int (View.members v)
    in
    Delivery_log.gc t.log ~floor_of

let cast_stab t =
  if t.phase = Normal && List.length (members t) > 1 then begin
    let m = Msg.empty () in
    push_pairs m (stab_vector t);
    Msg.push_u32 m (epoch t);
    Msg.push_u8 m k_stab;
    t.env.Layer.emit_down (Event.D_cast m)
  end

let handle_stab t ~src m =
  List.iter (fun (origin, next) ->
      let prev = Option.value (Hashtbl.find_opt t.acked (origin, src)) ~default:0 in
      if next > prev then Hashtbl.replace t.acked (origin, src) next)
    (pop_pairs m);
  gc_store t

(* --- view adoption --- *)

let adopt_view t v =
  (* Members this install removes are "supposedly failed" (Section 5):
     their in-flight casts must not surface in the new view (whatever
     was received pre-reply travelled in the flush replies already).
     An install that re-admits an endpoint (a merge) clears it. *)
  (match t.view with
   | Some prev ->
     List.iter
       (fun m -> if not (View.mem v m) then t.failed_set <- ESet.add m t.failed_set)
       (View.members prev)
   | None -> ());
  t.failed_set <- ESet.filter (fun m -> not (View.mem v m)) t.failed_set;
  t.view <- Some v;
  t.next_seq <- 0;
  Delivery_log.reset t.log;
  Hashtbl.reset t.acked;
  t.suspects <- ESet.empty;
  Hashtbl.reset t.pending_suspects;
  t.phase <- Normal;
  t.merge_wait <- None;
  t.views_installed <- t.views_installed + 1;
  t.env.Layer.trace ~category:"view" (View.to_string v);
  t.env.Layer.emit_down (Event.D_view v);
  t.env.Layer.emit_up (Event.U_view v);
  (* Rendezvous bookkeeping: only the coordinator stays registered. *)
  let rdv = t.env.Layer.rendezvous in
  if Addr.equal_endpoint (View.coordinator v) (me t) then
    rdv.Layer.announce t.env.Layer.group (me t)
  else rdv.Layer.withdraw t.env.Layer.group (me t);
  (* Unblock casts queued during the flush; they are cast afresh in the
     new view. *)
  let rec drain () =
    if not (Queue.is_empty t.pending_casts) then begin
      let m = Queue.pop t.pending_casts in
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Delivery_log.record t.log ~origin:(my_eid t) ~seq (Msg.to_string m);
      Msg.push_u32 m seq;
      Msg.push_u8 m k_data;
      t.env.Layer.emit_down (Event.D_cast m);
      drain ()
    end
  in
  drain ()

(* Go silent for good: tell the layers below that the destination set
   is just ourselves, so nothing more is sent to (or suspected about)
   the group we no longer belong to. *)
let go_exited t =
  if t.phase <> Exited then begin
    t.env.Layer.fp_invalidate ();
    t.phase <- Exited;
    Hashtbl.reset t.pending_suspects;
    t.env.Layer.rendezvous.Layer.withdraw t.env.Layer.group (me t);
    let lonely =
      View.create ~group:t.env.Layer.group ~ltime:(epoch t + 1) ~members:[ me t ]
    in
    t.env.Layer.emit_down (Event.D_view lonely);
    t.env.Layer.emit_up Event.U_exit
  end

(* --- flush protocol --- *)

let survivors_of t ~failed =
  List.filter (fun m -> not (List.exists (Addr.equal_endpoint m) failed)) (members t)

let send_flush_req t (fl : flush_ctx) dst =
  let m = Msg.empty () in
  (match fl.fl_merge_into with
   | Some g ->
     Wire.push_endpoint m g;
     Msg.push_bool m true
   | None -> Msg.push_bool m false);
  Wire.push_endpoint_list m fl.fl_joiners;
  Wire.push_endpoint_list m fl.fl_leavers;
  Wire.push_endpoint_list m fl.fl_failed;
  Msg.push_u16 m fl.fl_round;
  Wire.push_endpoint m fl.fl_coord;
  Msg.push_u32 m (epoch t);
  Msg.push_u8 m k_flush_req;
  unicast t dst m

(* Start (or restart) a flush as coordinator. *)
let start_flush t ~failed ~leavers ~joiners ~merge_into =
  t.round_counter <- t.round_counter + 1;
  t.flushes_run <- t.flushes_run + 1;
  let fl =
    { fl_coord = me t;
      fl_round = t.round_counter;
      fl_failed = failed;
      fl_leavers = leavers;
      fl_joiners = joiners;
      fl_merge_into = merge_into;
      fl_waiting = ESet.of_list (survivors_of t ~failed);
      fl_replies = [];
      fl_needs_reply = false;
      fl_replied = false }
  in
  t.env.Layer.fp_invalidate ();
  t.phase <- Flushing fl;
  t.env.Layer.trace ~category:"flush"
    (Printf.sprintf "start round=%d failed=%d joiners=%d" fl.fl_round (List.length failed)
       (List.length joiners));
  (* Requester-side merge flushes block awaiting the grantor's install;
     the grantor is outside our view, so no failure suspicion can
     unblock us — a watchdog must. On abort, we re-install our own
     membership under a fresh epoch and resume alone. *)
  (match merge_into with
   | Some grantor ->
     let round = fl.fl_round in
     ignore
       (t.env.Layer.set_timer ~delay:t.merge_abort (fun () ->
            match t.phase with
            | Flushing fl'
              when fl'.fl_round = round && Addr.equal_endpoint fl'.fl_coord (me t) ->
              t.env.Layer.trace ~category:"merge"
                (Format.asprintf "aborting merge toward %a" Addr.pp_endpoint grantor);
              t.merge_wait <- None;
              t.env.Layer.emit_up (Event.U_merge_denied "merge aborted: grantor unresponsive");
              (match t.view with
               | Some v ->
                 (* Re-install our own membership under a fresh epoch,
                    at every member of our partition (they are blocked
                    in the same flush, awaiting an install). *)
                 let nv =
                   View.create ~group:(View.group v) ~ltime:(View.ltime v + 1)
                     ~members:(View.members v)
                 in
                 List.iter
                   (fun dst ->
                      let m = Msg.empty () in
                      View.push m nv;
                      Msg.push_u8 m k_view_install;
                      unicast t dst m)
                   (View.members nv)
               | None -> ())
            | Idle | Normal | Exited | Flushing _ -> ()))
   | None -> ());
  ESet.iter (fun dst -> send_flush_req t fl dst) fl.fl_waiting

(* Member side: answer a FLUSH_REQ once the local stack has agreed via
   the flush_ok downcall. *)
let send_flush_reply t (fl : flush_ctx) =
  fl.fl_replied <- true;
  let m = Msg.empty () in
  let copies = if t.forward_unstable then Delivery_log.copies t.log else [] in
  push_copies m copies;
  push_pairs m (stab_vector t);
  Msg.push_u16 m fl.fl_round;
  Msg.push_u32 m (epoch t);
  Msg.push_u8 m k_flush_reply;
  unicast t fl.fl_coord m

let handle_flush_req t ~src:_ m =
  let coord = Wire.pop_endpoint m in
  let round = Msg.pop_u16 m in
  let failed = Wire.pop_endpoint_list m in
  let leavers = Wire.pop_endpoint_list m in
  let joiners = Wire.pop_endpoint_list m in
  let merge_into = if Msg.pop_bool m then Some (Wire.pop_endpoint m) else None in
  let announce () =
    List.iter
      (fun l ->
         match t.view with
         | Some v ->
           (match View.rank_of v l with
            | Some r -> t.env.Layer.emit_up (Event.U_leave r)
            | None -> ())
         | None -> ())
      leavers;
    t.env.Layer.emit_up (Event.U_flush failed)
  in
  match t.phase with
  | Exited | Idle -> ()
  | Flushing prev when Addr.equal_endpoint coord (me t) ->
    (* Our own FLUSH_REQ looping back: keep the coordinator bookkeeping
       (waiting/replies); ignore if a wider round superseded it. *)
    if Addr.equal_endpoint prev.fl_coord (me t) && prev.fl_round = round then begin
      prev.fl_needs_reply <- true;
      announce ()
    end
  | Normal when Addr.equal_endpoint coord (me t) ->
    ()  (* stale loopback of a flush we already finished *)
  | Normal | Flushing _ ->
    t.env.Layer.fp_invalidate ();
    t.phase <-
      Flushing
        { fl_coord = coord;
          fl_round = round;
          fl_failed = failed;
          fl_leavers = leavers;
          fl_joiners = joiners;
          fl_merge_into = merge_into;
          fl_waiting = ESet.empty;
          fl_replies = [];
          fl_needs_reply = true;
          fl_replied = false };
    announce ()

let current_flush t =
  match t.phase with Flushing fl -> Some fl | Idle | Normal | Exited -> None

let handle_flush_ok_down t =
  match current_flush t with
  | Some fl when fl.fl_needs_reply ->
    fl.fl_needs_reply <- false;
    send_flush_reply t fl
  | Some _ | None -> ()

(* Coordinator: all replies in — compute the cut, forward what anyone
   misses, then install (or, on the requesting side of a merge, report
   readiness to the grantor). *)
let complete_flush t (fl : flush_ctx) =
  let v = match t.view with Some v -> v | None -> assert false in
  (* Maximal cut per origin over all replies, and the union of every
     offered copy. *)
  let cut, everything =
    Delivery_log.cut_and_union ~own:t.log
      (List.map (fun (_, r) -> (r.rep_vector, r.rep_copies)) fl.fl_replies)
  in
  (* Forward to each survivor the messages it reported missing. *)
  if t.forward_unstable then
    List.iter
      (fun (replier, r) ->
         let missing = Delivery_log.missing_for ~cut ~everything r.rep_vector in
         if missing <> [] then begin
           let m = Msg.empty () in
           push_copies m missing;
           Msg.push_u32 m (epoch t);
           Msg.push_u8 m k_fwd;
           unicast t (Addr.endpoint replier) m
         end)
      fl.fl_replies;
  let u_flush_ok_all () =
    List.iter
      (fun (replier, _) ->
         match View.rank_of v (Addr.endpoint replier) with
         | Some r -> t.env.Layer.emit_up (Event.U_flush_ok r)
         | None -> ())
      fl.fl_replies
  in
  u_flush_ok_all ();
  (* Primary-partition restriction: a reconfiguration that excludes
     crashed members may only proceed if the survivors are a strict
     majority of the previous view (voluntary leavers vote with the
     survivors). A minority partition halts: everyone gets EXIT and
     must rejoin the primary once connectivity returns. *)
  let minority =
    t.primary_partition && fl.fl_failed <> []
    && 2 * (List.length fl.fl_replies + List.length fl.fl_leavers) <= View.size v
  in
  if minority then begin
    List.iter
      (fun (replier, _) ->
         if replier <> my_eid t then begin
           let m = Msg.empty () in
           Msg.push_u32 m (epoch t);
           Msg.push_u8 m k_halt;
           unicast t (Addr.endpoint replier) m
         end)
      fl.fl_replies;
    t.env.Layer.trace ~category:"halt" "minority partition";
    go_exited t
  end
  else
  match fl.fl_merge_into with
  | Some grantor ->
    (* Requesting side of a merge: our partition is flushed; tell the
       grantor who we are. Our members stay blocked until the union
       view arrives from the grantor's coordinator. *)
    let m = Msg.empty () in
    Wire.push_endpoint_list m (survivors_of t ~failed:(fl.fl_failed @ fl.fl_leavers));
    Msg.push_u32 m (epoch t);
    Msg.push_u8 m k_merge_ready;
    unicast t grantor m
  | None ->
    let excluded = fl.fl_failed @ fl.fl_leavers in
    (match View.successor v ~failed:excluded ~joiners:fl.fl_joiners with
     | None -> go_exited t
     | Some nv ->
       let nv =
         (* A merge-granting install must outrank both partitions'
            epochs, or the joining side would reject it as stale. *)
         if fl.fl_joiners <> [] && t.peer_epoch >= View.ltime nv then
           View.create ~group:(View.group nv) ~ltime:(t.peer_epoch + 1)
             ~members:(View.members nv)
         else nv
       in
       t.peer_epoch <- -1;
       t.granted_peer <- None;
       (* Install at every member of the new view, and tell leavers
          they are out. *)
       let m_of_view dst =
         let m = Msg.empty () in
         View.push m nv;
         Msg.push_u8 m k_view_install;
         unicast t dst m
       in
       List.iter m_of_view (View.members nv);
       List.iter
         (fun leaver -> if not (View.mem nv leaver) then m_of_view leaver)
         fl.fl_leavers;
       (* Failed members get the install too. Under a one-way
          partition the excluded member may still hear us even though
          we cannot hear it; the install lets its handle_view_install
          turn the exclusion into a clean EXIT instead of a stack
          stuck waiting in a view that has moved on. Under a full
          partition the unicast is simply lost. *)
       List.iter
         (fun f -> if not (View.mem nv f) then m_of_view f)
         fl.fl_failed)

let handle_flush_reply t ~src m =
  match current_flush t with
  | Some fl when Addr.equal_endpoint fl.fl_coord (me t) ->
    let round = Msg.pop_u16 m in
    if round = fl.fl_round then begin
      let vector = pop_pairs m in
      let copies = pop_copies m in
      if ESet.mem (Addr.endpoint src) fl.fl_waiting then begin
        fl.fl_waiting <- ESet.remove (Addr.endpoint src) fl.fl_waiting;
        fl.fl_replies <- (src, { rep_vector = vector; rep_copies = copies }) :: fl.fl_replies;
        if ESet.is_empty fl.fl_waiting then complete_flush t fl
      end
    end
  | Some _ | None -> ()

let handle_fwd t m =
  List.iter
    (fun (o, s, p) ->
       accept_data t ~origin:o ~seq:s ~rank:(rank_of_origin t o) (Msg.create p) [])
    (pop_copies m)

let handle_view_install t m =
  let v = View.pop m in
  if View.mem v (me t) then begin
    if View.ltime v > epoch t then begin
      adopt_view t v;
      (* Leave requests that arrived during the flush. *)
      let leavers = List.filter (View.mem v) t.pending_leavers in
      t.pending_leavers <- [];
      if leavers <> [] && i_am_coordinator t then
        start_flush t ~failed:[] ~leavers ~joiners:[] ~merge_into:None
    end
  end
  else if View.ltime v > epoch t then
    (* We were excluded by a view newer than ours: either we asked to
       leave, or the view moved on without us. *)
    go_exited t
  else
    (* A stale excluding install — e.g. one addressed to us as a
       failed member during a partition, retransmitted until the heal,
       by which point our own partition has reconfigured past it.
       Treating it as authoritative would exit a member both sides
       have since moved on with; the epochs say it lost the race. *)
    t.env.Layer.trace ~category:"stale"
      (Printf.sprintf "excluding install ltime %d <= epoch %d" (View.ltime v) (epoch t))

(* --- suspicion --- *)

let confirm_suspects t es =
  match t.view with
  | None -> ()
  | Some _ when (match t.phase with Exited | Idle -> true | Normal | Flushing _ -> false) ->
    ()
  | Some v ->
  let es = List.filter (fun e -> not (Addr.equal_endpoint e (me t))) es in
  let fresh = List.filter (fun e -> not (is_suspect t e) && View.mem v e) es in
  if fresh <> [] then begin
    t.suspects <- List.fold_left (fun acc e -> ESet.add e acc) t.suspects fresh;
    List.iter
      (fun e -> t.env.Layer.trace ~category:"suspect" (Addr.endpoint_to_string e))
      fresh;
    if i_am_coordinator t then begin
      (* Start a flush, or widen the one in progress. *)
      match t.phase with
      | Normal -> start_flush t ~failed:(ESet.elements t.suspects) ~leavers:[] ~joiners:[]
                    ~merge_into:None
      | Flushing fl when Addr.equal_endpoint fl.fl_coord (me t) ->
        start_flush t ~failed:(ESet.elements t.suspects) ~leavers:fl.fl_leavers
          ~joiners:fl.fl_joiners ~merge_into:fl.fl_merge_into
      | Flushing _ ->
        (* We were a member in someone else's flush but that someone is
           now suspected; take over. *)
        start_flush t ~failed:(ESet.elements t.suspects) ~leavers:[] ~joiners:[]
          ~merge_into:None
      | Idle | Exited -> ()
    end
    else begin
      (* Relay to the coordinator (it may not have noticed), and if the
         suspect set now orphans us behind a dead coordinator, the
         recursion above takes over on the next suspicion event. *)
      match coordinator t with
      | Some c when not (Addr.equal_endpoint c (me t)) ->
        let m = Msg.empty () in
        Wire.push_endpoint_list m (ESet.elements t.suspects);
        Msg.push_u32 m (epoch t);
        Msg.push_u8 m k_suspect;
        unicast t c m
      | Some _ | None -> ()
    end
  end

(* Suspicion debounce. With [suspect_grace] > 0 a detector suspicion
   is only provisional: the member is ruled out when it stays silent
   through the whole grace window. A lossy link (chaos-level drops, a
   congested path) makes the NAK detector fire spuriously; a live
   member keeps multicasting k_stab every [stab_period], so hearing
   anything from it cancels the pending entry before the timer
   promotes it. Authoritative reports (the application's D_flush, a
   peer's already-confirmed k_suspect relay) keep bypassing the
   grace via {!confirm_suspects}. *)
let note_suspects t es =
  if t.suspect_grace <= 0.0 then confirm_suspects t es
  else
    List.iter
      (fun e ->
         let eid = Addr.endpoint_id e in
         if (not (Addr.equal_endpoint e (me t)))
            && (not (is_suspect t e))
            && (not (Hashtbl.mem t.pending_suspects eid))
            && (match t.view with Some v -> View.mem v e | None -> false)
         then begin
           Hashtbl.replace t.pending_suspects eid e;
           t.env.Layer.trace ~category:"suspect-pending" (Addr.endpoint_to_string e);
           ignore
             (t.env.Layer.set_timer ~delay:t.suspect_grace (fun () ->
                  if Hashtbl.mem t.pending_suspects eid then begin
                    Hashtbl.remove t.pending_suspects eid;
                    confirm_suspects t [ e ]
                  end))
         end)
      es

(* Evidence of life from [eid]: cancel any suspicion still inside its
   grace window. Confirmed suspicions are not unwound — the flush they
   triggered resolves through a view change and a later merge. *)
let heard_from t eid = Hashtbl.remove t.pending_suspects eid

(* --- merging --- *)

let send_merge_req t contact =
  t.env.Layer.trace ~category:"merge"
    (Format.asprintf "requesting merge into %a" Addr.pp_endpoint contact);
  let m = Msg.empty () in
  Wire.push_endpoint_list m (members t);
  Msg.push_u32 m (epoch t);
  Wire.push_endpoint m (me t);
  Msg.push_u8 m k_merge_req;
  unicast t contact m

let rec arm_merge_retry t =
  ignore
    (t.env.Layer.set_timer ~delay:t.merge_retry (fun () ->
         match t.merge_wait with
         | Some mw when t.phase = Normal ->
           if mw.mw_attempts < 20 then begin
             mw.mw_attempts <- mw.mw_attempts + 1;
             (* The original contact may be gone; re-resolve through the
                rendezvous service when possible. *)
             let contact =
               match t.env.Layer.rendezvous.Layer.lookup t.env.Layer.group with
               | c :: _ when not (Addr.equal_endpoint c (me t)) -> c
               | _ -> mw.mw_contact
             in
             send_merge_req t contact;
             arm_merge_retry t
           end
           else begin
             t.merge_wait <- None;
             t.env.Layer.emit_up (Event.U_merge_denied "merge timed out")
           end
         | Some _ | None -> ()))

let begin_merge t contact =
  if not (Addr.equal_endpoint contact (me t)) then begin
    t.merge_wait <- Some { mw_contact = contact; mw_attempts = 0 };
    send_merge_req t contact;
    arm_merge_retry t
  end

let grant_merge t (req : Event.merge_request) =
  t.granted_peer <- Some (req.Event.from_coord, req.Event.from_members);
  let m = Msg.empty () in
  Msg.push_u8 m k_merge_grant;
  unicast t req.Event.from_coord m

let deny_merge t (req : Event.merge_request) reason =
  let m = Msg.empty () in
  Msg.push_string m reason;
  Msg.push_u8 m k_merge_deny;
  unicast t req.Event.from_coord m

let handle_merge_req t m =
  let req_coord = Wire.pop_endpoint m in
  let their_epoch = Msg.pop_u32 m in
  let their_members = Wire.pop_endpoint_list m in
  match t.view with
  | None -> ()
  | Some v ->
    if not (i_am_coordinator t) then begin
      (* Forward to our coordinator. *)
      match coordinator t with
      | Some c when not (Addr.equal_endpoint c (me t)) ->
        let fwd = Msg.empty () in
        Wire.push_endpoint_list fwd their_members;
        Msg.push_u32 fwd their_epoch;
        Wire.push_endpoint fwd req_coord;
        Msg.push_u8 fwd k_merge_req;
        unicast t c fwd
      | Some _ | None -> ()
    end
    else if List.for_all (View.mem v) their_members then
      ()  (* already merged; duplicate request *)
    else if t.merge_wait <> None && my_eid t > Addr.endpoint_id req_coord then
      (* Symmetric merge race: both coordinators requested each other.
         The younger side stands down and lets its own request be the
         one that is granted. *)
      ()
    else if blocked t || t.granted_peer <> None then
      t.env.Layer.trace ~category:"merge"
        (Format.asprintf "deferring merge req from %a (busy)" Addr.pp_endpoint
           req_coord)
      (* busy with another reconfiguration; the requester retries *)
    else begin
      (* If we had our own request outstanding, cancel it: we are now
         the granting (older) side of this merge. *)
      t.merge_wait <- None;
      t.req_counter <- t.req_counter + 1;
      let req =
        { Event.req_id = t.req_counter; from_coord = req_coord; from_members = their_members }
      in
      if t.auto_merge then grant_merge t req
      else begin
        t.pending_grant <- (t.req_counter, req) :: t.pending_grant;
        t.env.Layer.emit_up (Event.U_merge_request req)
      end
    end

let handle_merge_grant t ~src =
  match t.merge_wait with
  | Some _ when t.phase = Normal ->
    (* Flush our own partition, then report readiness to the grantor. *)
    if i_am_coordinator t then
      start_flush t ~failed:(ESet.elements t.suspects) ~leavers:[] ~joiners:[]
        ~merge_into:(Some (Addr.endpoint src))
  | Some _ | None -> ()

let handle_merge_ready t ~src m =
  let their_epoch = Msg.pop_u32 m in
  let their_members = Wire.pop_endpoint_list m in
  match t.granted_peer with
  | Some (peer, _) when Addr.equal_endpoint peer (Addr.endpoint src) ->
    if t.phase = Normal && i_am_coordinator t then begin
      t.peer_epoch <- their_epoch;
      start_flush t ~failed:(ESet.elements t.suspects) ~leavers:[] ~joiners:their_members
        ~merge_into:None
    end
  | Some _ | None -> ()

(* --- leaving --- *)

let handle_leave t =
  match t.view with
  | None -> go_exited t
  | Some v ->
    if View.size v = 1 then go_exited t
    else if i_am_coordinator t then
      (* Hand the flush to ourselves with us as leaver. *)
      start_flush t ~failed:(ESet.elements t.suspects) ~leavers:[ me t ] ~joiners:[]
        ~merge_into:None
    else begin
      match coordinator t with
      | Some c ->
        let m = Msg.empty () in
        Msg.push_u32 m (epoch t);
        Msg.push_u8 m k_leave_req;
        unicast t c m
      | None -> ()
    end

let handle_leave_req t ~src =
  if i_am_coordinator t then begin
    if t.phase = Normal then
      start_flush t ~failed:(ESet.elements t.suspects) ~leavers:[ Addr.endpoint src ]
        ~joiners:[] ~merge_into:None
    else t.pending_leavers <- Addr.endpoint src :: t.pending_leavers
  end

(* --- event handlers --- *)

let handle_down t (ev : Event.down) =
  match ev with
  | Event.D_join contact ->
    (* Found a singleton view, then (if given a contact) merge with the
       existing group: "member join (actually, view merge)". *)
    adopt_view t (View.singleton ~group:t.env.Layer.group (me t));
    (match contact with
     | Some c when not (Addr.equal_endpoint c (me t)) -> begin_merge t c
     | Some _ | None -> ())
  | Event.D_cast m ->
    if t.phase = Exited then ()
    else if blocked t || t.phase = Idle then Queue.push m t.pending_casts
    else begin
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Delivery_log.record t.log ~origin:(my_eid t) ~seq (Msg.to_string m);
      Msg.push_u32 m seq;
      Msg.push_u8 m k_data;
      t.env.Layer.emit_down (Event.D_cast m)
    end
  | Event.D_flush_ok -> handle_flush_ok_down t
  | Event.D_flush failed ->
    (* Application-driven exclusion: treat as an authoritative external
       failure notification — no grace window. *)
    confirm_suspects t failed
  | Event.D_suspect suspects -> note_suspects t suspects
  | Event.D_merge contact -> if i_am_coordinator t then begin_merge t contact
  | Event.D_merge_granted req_ev ->
    (match List.assoc_opt req_ev.Event.req_id t.pending_grant with
     | Some req ->
       t.pending_grant <- List.remove_assoc req_ev.Event.req_id t.pending_grant;
       grant_merge t req
     | None -> ())
  | Event.D_merge_denied req_ev ->
    (match List.assoc_opt req_ev.Event.req_id t.pending_grant with
     | Some req ->
       t.pending_grant <- List.remove_assoc req_ev.Event.req_id t.pending_grant;
       deny_merge t req "denied by application"
     | None -> ())
  | Event.D_leave -> handle_leave t
  | Event.D_send (dsts, m) ->
    (* Tag pass-through subset sends so the receiving side can tell
       them from our own control traffic. *)
    Msg.push_u8 m k_app_send;
    t.env.Layer.emit_down (Event.D_send (dsts, m))
  | Event.D_view _ | Event.D_ack _ | Event.D_stable _ | Event.D_dump ->
    t.env.Layer.emit_down ev

(* Control kinds scoped to a view epoch: a copy that outlives its view
   (e.g. retransmitted across a partition) must be ignored. *)
let epoch_scoped kind =
  kind = k_stab || kind = k_flush_req || kind = k_flush_reply || kind = k_fwd
  || kind = k_suspect || kind = k_leave_req || kind = k_halt

let handle_ctl t ~rank ~meta kind m =
  let src = src_of meta in
  ignore rank;
  if epoch_scoped kind && Msg.pop_u32 m <> epoch t then
    t.env.Layer.trace ~category:"stale" (Printf.sprintf "kind %d from old epoch" kind)
  else if kind = k_stab then handle_stab t ~src m
  else if kind = k_flush_req then handle_flush_req t ~src m
  else if kind = k_flush_reply then handle_flush_reply t ~src m
  else if kind = k_fwd then handle_fwd t m
  else if kind = k_view_install then handle_view_install t m
  else if kind = k_merge_req then handle_merge_req t m
  else if kind = k_merge_grant then handle_merge_grant t ~src
  else if kind = k_merge_deny then begin
    let reason = Msg.pop_string m in
    t.merge_wait <- None;
    t.env.Layer.emit_up (Event.U_merge_denied reason)
  end
  else if kind = k_merge_ready then handle_merge_ready t ~src m
  else if kind = k_suspect then
    (* The relaying peer already sat out its own grace window. *)
    confirm_suspects t (Wire.pop_endpoint_list m)
  else if kind = k_halt then go_exited t
  else if kind = k_leave_req then handle_leave_req t ~src
  else t.env.Layer.trace ~category:"dropped" (Printf.sprintf "unknown kind %d" kind)

let handle_up t (ev : Event.up) =
  match ev with
  | Event.U_cast (rank, m, meta) | Event.U_send (rank, m, meta) ->
    heard_from t (src_of meta);
    (try
       let kind = Msg.pop_u8 m in
       if kind = k_data then begin
         let seq = Msg.pop_u32 m in
         let origin = src_of meta in
         (* Section 5: after replying to a flush, ignore messages from
            supposedly failed members — a straggler copy that only some
            survivors receive would break the agreement cut. (It is not
            lost: whoever received it pre-reply put it in the reply, and
            the coordinator forwards it to everyone.) *)
         let from_failed_post_reply =
           t.ignore_stragglers
           && (match t.phase with
               | Flushing fl ->
                 fl.fl_replied
                 && List.exists (fun e -> Addr.endpoint_id e = origin) fl.fl_failed
               | Normal ->
                 (* Post-view half of the same rule: the origin was
                    removed as failed by a view we installed. *)
                 ESet.exists (fun e -> Addr.endpoint_id e = origin) t.failed_set
               | Idle | Exited -> false)
         in
         if from_failed_post_reply then
           t.env.Layer.trace ~category:"ignored" "straggler from failed member"
         else accept_data t ~origin ~seq ~rank m meta
       end
       else if kind = k_app_send then
         t.env.Layer.emit_up (Event.U_send (rank, m, meta))
       else handle_ctl t ~rank ~meta kind m
     with Msg.Truncated what -> t.env.Layer.trace ~category:"dropped" ("truncated " ^ what))
  | Event.U_problem e -> note_suspects t [ e ]
  | Event.U_lost_message _ ->
    (* Should not happen under MBRSHIP's requirements (reliable FIFO
       below with buffers outliving stability), but surface it. *)
    t.env.Layer.emit_up ev
  | Event.U_view _ ->
    (* Views fabricated below are superseded by ours; swallow. *)
    ()
  | Event.U_merge_request _ | Event.U_merge_denied _ | Event.U_flush _ | Event.U_flush_ok _
  | Event.U_leave _ | Event.U_stable _ | Event.U_system_error _ | Event.U_exit
  | Event.U_destroy | Event.U_packet _ ->
    t.env.Layer.emit_up ev

let make ~name ~forward_unstable_default params env =
  let t =
    { env;
      forward_unstable =
        Params.get_bool params "forward_unstable" ~default:forward_unstable_default;
      ignore_stragglers = Params.get_bool params "ignore_stragglers" ~default:true;
      primary_partition = Params.get_bool params "primary_partition" ~default:false;
      auto_merge = Params.get_bool params "auto_merge" ~default:true;
      stab_period = Params.get_float params "stab_period" ~default:0.1;
      merge_retry = Params.get_float params "merge_retry" ~default:0.5;
      merge_abort = Params.get_float params "merge_abort" ~default:2.0;
      suspect_grace = Params.get_float params "suspect_grace" ~default:0.0;
      phase = Idle;
      view = None;
      next_seq = 0;
      log = Delivery_log.create ();
      acked = Hashtbl.create 16;
      suspects = ESet.empty;
      pending_suspects = Hashtbl.create 8;
      failed_set = ESet.empty;
      pending_casts = Queue.create ();
      round_counter = 0;
      merge_wait = None;
      pending_grant = [];
      granted_peer = None;
      peer_epoch = -1;
      pending_leavers = [];
      req_counter = 0;
      stop_timer = (fun () -> ());
      views_installed = 0;
      flushes_run = 0;
      ctl_sent = 0 }
  in
  t.stop_timer <- Layer.every env ~period:t.stab_period (fun () -> cast_stab t);
  (* Fused form: data casts in phase Normal only. The delivery check
     insists the packet is origin's exact next expected cast with an
     empty out-of-order stash, and declines anything from a supposedly
     failed member (conservative: even with ignore_stragglers off, the
     full path — which would deliver it — handles that case). The
     commit logs the payload as seen *at this layer* — the stash/mark
     dance recovers it after the layers above popped their headers. *)
  env.Layer.fp_register (fun () ->
      let chk_pos = ref (0, 0) in
      let chk_origin = ref (-1) in
      let chk_seq = ref 0 in
      Some
        { Layer.fp_send_ready = (fun ~len:_ -> t.phase = Normal);
          fp_send =
            (fun seg ->
               let seq = t.next_seq in
               t.next_seq <- seq + 1;
               Delivery_log.record t.log ~origin:(my_eid t) ~seq (Seg.contents seg);
               Seg.push_u32 seg seq;
               Seg.push_u8 seg k_data);
          fp_deliver_check =
            (fun ~rank:_ ~meta m ->
               t.phase = Normal
               && Msg.pop_u8 m = k_data
               && begin
                 let seq = Msg.pop_u32 m in
                 let origin = src_of meta in
                 (not (ESet.exists (fun e -> Addr.endpoint_id e = origin) t.failed_set))
                 && seq = Delivery_log.next_expected t.log origin
                 && Delivery_log.ooo_pending t.log = 0
                 && begin
                   chk_pos := Msg.mark m;
                   chk_origin := origin;
                   chk_seq := seq;
                   true
                 end
               end);
          fp_deliver_commit =
            (fun ~rank:_ ~meta:_ m ->
               heard_from t !chk_origin;
               Delivery_log.advance t.log ~origin:!chk_origin ~seq:!chk_seq
                 ~payload:(Msg.to_string_at m !chk_pos)) });
  { Layer.name;
    handle_down = handle_down t;
    handle_up = handle_up t;
    dump =
      (fun () ->
         [ Printf.sprintf "phase=%s epoch=%d members=%d suspects=%d"
             (match t.phase with
              | Idle -> "idle"
              | Normal -> "normal"
              | Flushing _ -> "flushing"
              | Exited -> "exited")
             (epoch t) (List.length (members t)) (ESet.cardinal t.suspects);
           Printf.sprintf "views=%d flushes=%d logged=%d ctl_sent=%d" t.views_installed
             t.flushes_run (Delivery_log.size t.log) t.ctl_sent ]);
    inert = false;
    stop = (fun () -> t.stop_timer ()) }

let create params env = make ~name:"MBRSHIP" ~forward_unstable_default:true params env

(* BMS: the same membership machinery without unstable-message
   forwarding — consistent views and semi-synchrony only (Table 3). A
   FLUSH layer above restores full virtual synchrony compositionally. *)
let create_bms params env = make ~name:"BMS" ~forward_unstable_default:false params env
