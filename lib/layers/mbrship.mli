(** MBRSHIP: group membership and virtual synchrony (Section 5) — the
    coordinator-driven flush of Figure 2, join-as-merge, graceful
    leaves, partition merges, and the Section 5 rule that members
    ignore stragglers from failed members after answering a flush.

    Parameters: [forward_unstable] (default true; the BMS variant
    defaults false), [auto_merge] (default true; with false, merge
    requests surface as MERGE_REQUEST upcalls), [stab_period],
    [merge_retry], [primary_partition] (default false) — the
    Isis-style restriction of Section 9 under which only a strict
    majority of the previous view installs the next view and minority
    members halt — [ignore_stragglers] (default true): the Section 5
    ignore rule; disabling it reintroduces the straggler race so the
    systematic tests (lib/check, lib/model) can demonstrate the
    counterexample on the production stack — and [suspect_grace]
    (default 0 = immediate): a detector suspicion only takes effect
    after the member stays silent this long, so transient loss on a
    chaotic link does not rule a live member out; hearing anything
    from the member cancels the pending suspicion, while application
    D_flush exclusions and peers' relayed suspicions (already graced
    at the relayer) stay immediate.

    A view install that excludes failed members is also unicast to
    them: under a one-way partition the excluded member may still
    receive, and the install converts its stuck stack into a clean
    EXIT (under a full partition the copy is simply lost and the
    member recovers by merging later). *)

val create : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
(** The full MBRSHIP layer (P8, P9, P15). *)

val create_bms : Horus_hcpi.Params.t -> Horus_hcpi.Layer.ctor
(** BMS: the same machinery without unstable-message forwarding —
    consistent views and semi-synchrony only (P8, P15); stack FLUSH or
    VSS above to recover P9 compositionally. *)
