(* Per-view delivery bookkeeping shared by the membership-family layers
   (MBRSHIP, BMS via MBRSHIP, FLUSH, VSS): contiguous per-origin
   delivery with an out-of-order stash (forwarded copies can race
   direct copies), an unstable-message store for flush recovery, and
   the wire codecs for delivered-vectors and message copies. *)

open Horus_msg
open Horus_hcpi

type t = {
  store : (int * int, string) Hashtbl.t;   (* (origin eid, seq) -> payload *)
  delivered : (int, int) Hashtbl.t;        (* origin eid -> next expected *)
  ooo : (int * int, int * Msg.t * Event.meta) Hashtbl.t;
}

let create () =
  { store = Hashtbl.create 64; delivered = Hashtbl.create 8; ooo = Hashtbl.create 8 }

let reset t =
  Hashtbl.reset t.store;
  Hashtbl.reset t.delivered;
  Hashtbl.reset t.ooo

let record t ~origin ~seq payload = Hashtbl.replace t.store (origin, seq) payload

let size t = Hashtbl.length t.store

let next_expected t origin = Option.value (Hashtbl.find_opt t.delivered origin) ~default:0

let ooo_pending t = Hashtbl.length t.ooo

(* The fused-delivery commit: exactly [accept]'s in-order branch with
   an empty stash — advance the origin's lane and log the payload. *)
let advance t ~origin ~seq ~payload =
  Hashtbl.replace t.delivered origin (seq + 1);
  record t ~origin ~seq payload

(* Deliver origin's cast in sequence via [deliver]; stash
   ahead-of-sequence arrivals; drop duplicates. *)
let rec accept t ~origin ~seq ~rank m meta ~deliver =
  let expected = next_expected t origin in
  if seq < expected then ()
  else if seq > expected then Hashtbl.replace t.ooo (origin, seq) (rank, m, meta)
  else begin
    Hashtbl.replace t.delivered origin (expected + 1);
    record t ~origin ~seq (Msg.to_string m);
    deliver ~rank m meta;
    match Hashtbl.find_opt t.ooo (origin, seq + 1) with
    | Some (r, m', meta') ->
      Hashtbl.remove t.ooo (origin, seq + 1);
      accept t ~origin ~seq:(seq + 1) ~rank:r m' meta' ~deliver
    | None -> ()
  end

(* Per-origin next-expected pairs, sorted: the receive vector a member
   reports during a flush. *)
let vector t =
  Hashtbl.fold (fun origin next acc -> (origin, next) :: acc) t.delivered []
  |> List.sort compare

(* Every logged (unstable) message, sorted: the copies a member offers
   during a flush. *)
let copies t =
  Hashtbl.fold (fun (o, s) p acc -> (o, s, p) :: acc) t.store [] |> List.sort compare

let gc t ~floor_of =
  Hashtbl.iter
    (fun (origin, seq) _ -> if seq < floor_of origin then Hashtbl.remove t.store (origin, seq))
    (Hashtbl.copy t.store)

(* --- wire codecs --- *)

let push_pairs m pairs =
  Wire.push_list (fun m (a, b) -> Msg.push_u32 m b; Msg.push_u32 m a) m pairs

let pop_pairs m =
  Wire.pop_list (fun m -> let a = Msg.pop_u32 m in let b = Msg.pop_u32 m in (a, b)) m

let push_copies m cs =
  Wire.push_list
    (fun m (o, s, p) -> Msg.push_string m p; Msg.push_u32 m s; Msg.push_u32 m o)
    m cs

let pop_copies m =
  Wire.pop_list
    (fun m ->
       let o = Msg.pop_u32 m in
       let s = Msg.pop_u32 m in
       let p = Msg.pop_string m in
       (o, s, p))
    m

(* Maximal per-origin cut over a set of receive vectors, and the union
   message store from the offered copies — what a flush coordinator
   computes before forwarding. *)
let cut_and_union ~own replies =
  let cut : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let everything : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter (fun k p -> Hashtbl.replace everything k p) own.store;
  List.iter
    (fun (vec, cs) ->
       List.iter
         (fun (o, next) ->
            if next > Option.value (Hashtbl.find_opt cut o) ~default:0 then
              Hashtbl.replace cut o next)
         vec;
       List.iter (fun (o, s, p) -> Hashtbl.replace everything (o, s) p) cs)
    replies;
  (cut, everything)

(* The copies a particular replier is missing, given the cut. *)
let missing_for ~cut ~everything vec =
  let missing = ref [] in
  Hashtbl.iter
    (fun o target ->
       let have = Option.value (List.assoc_opt o vec) ~default:0 in
       for s = have to target - 1 do
         match Hashtbl.find_opt everything (o, s) with
         | Some p -> missing := (o, s, p) :: !missing
         | None -> ()
       done)
    cut;
  List.sort compare !missing
