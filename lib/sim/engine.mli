(** Discrete-event simulation engine.

    Time is a float in seconds. Events at equal times fire in
    scheduling order, making runs deterministic. *)

type t

type handle
(** Cancellation handle for a scheduled event. *)

exception Budget_exhausted of int
(** Raised by {!run}/{!run_until} when the event budget is hit — a
    guard against runaway protocols. *)

val create : ?metrics:Horus_obs.Metrics.t -> unit -> t
(** With [metrics], the engine records an [engine.dispatch_delay_s]
    histogram (simulated seconds between scheduling and execution of
    each event — deterministic in the seed) plus
    [engine.events_executed] / [engine.events_cancelled] counters. *)

val now : t -> float
(** Current simulated time. *)

val executed : t -> int
(** Number of events executed so far. *)

val pending : t -> int
(** Number of events still queued. *)

val next_time : t -> float option
(** Firing time of the earliest queued event, [None] when the queue is
    empty. Cancelled events are included (an early wake-up is
    harmless); real-time drivers use this to size their sleep. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Schedule a thunk at an absolute time (must not be in the past). *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** Schedule a thunk after a relative delay (must be non-negative). *)

val cancel : handle -> unit
(** Cancelled events are skipped when their time arrives. *)

val cancelled : handle -> bool

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

(** {2 Schedule adversary}

    Systematic testing hooks (see [lib/check]): a chooser lets an
    adversary pick which of several near-simultaneous events fires
    next, modelling the real nondeterminism of timer and network
    timing while keeping every choice sequence replayable. Without a
    chooser the engine behaves exactly as before. *)

type candidate = {
  c_time : float;  (** scheduled firing time of the candidate *)
  c_seq : int;     (** its scheduling sequence number (stable id) *)
}

val set_chooser :
  ?horizon:float -> ?width:int -> ?from:float ->
  t -> (now:float -> candidate array -> int) -> unit
(** [set_chooser t f] routes dispatch through [f]: whenever at least
    two live events fall within [horizon] (default 2 ms) of the
    earliest pending event — at most [width] (default 4) of them, and
    only once the earliest event's time reaches [from] — [f] picks the
    index to fire next; the rest are re-queued. Out-of-range indices
    fall back to 0 (the earliest). Executing a deferred event never
    moves time backwards, and {!schedule_at} clamps (rather than
    rejects) absolute times the reordering has overtaken. *)

val clear_chooser : t -> unit

val run : ?max_events:int -> t -> unit
(** Run until quiescence. *)

val run_until : ?max_events:int -> t -> time:float -> unit
(** Run all events with time <= [time]; advances [now] to [time]. *)
