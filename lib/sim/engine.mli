(** Discrete-event simulation engine.

    Time is a float in seconds. Events at equal times fire in
    scheduling order, making runs deterministic. *)

type t

type handle
(** Cancellation handle for a scheduled event. *)

exception Budget_exhausted of int
(** Raised by {!run}/{!run_until} when the event budget is hit — a
    guard against runaway protocols. *)

val create : ?metrics:Horus_obs.Metrics.t -> unit -> t
(** With [metrics], the engine records an [engine.dispatch_delay_s]
    histogram (simulated seconds between scheduling and execution of
    each event — deterministic in the seed) plus
    [engine.events_executed] / [engine.events_cancelled] counters. *)

val now : t -> float
(** Current simulated time. *)

val executed : t -> int
(** Number of events executed so far. *)

val pending : t -> int
(** Number of events still queued. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Schedule a thunk at an absolute time (must not be in the past). *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** Schedule a thunk after a relative delay (must be non-negative). *)

val cancel : handle -> unit
(** Cancelled events are skipped when their time arrives. *)

val cancelled : handle -> bool

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : ?max_events:int -> t -> unit
(** Run until quiescence. *)

val run_until : ?max_events:int -> t -> time:float -> unit
(** Run all events with time <= [time]; advances [now] to [time]. *)
