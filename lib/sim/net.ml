(* Simulated best-effort datagram network (the "ATM / Internet" of the
   paper, providing only property P1).

   Nodes are integer ids. The network can delay, drop, duplicate,
   garble and reorder packets, partition the node set, and crash
   nodes — each knob independently controllable so tests can exercise
   exactly one failure mode at a time. *)

type config = {
  latency : float;        (* base one-way latency in seconds *)
  jitter : float;         (* uniform extra latency in [0, jitter) — causes reordering *)
  drop_prob : float;
  duplicate_prob : float;
  garble_prob : float;    (* flip one random byte of the payload *)
  mtu : int;              (* packets larger than this are dropped (and counted) *)
}

let default_config =
  { latency = 0.0005; jitter = 0.0; drop_prob = 0.0; duplicate_prob = 0.0;
    garble_prob = 0.0; mtu = max_int }

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable garbled : int;
  mutable duplicated : int;
  mutable oversize : int;
  mutable bytes_sent : int;
}

type t = {
  engine : Engine.t;
  prng : Horus_util.Prng.t;
  mutable config : config;
  handlers : (int, src:int -> Bytes.t -> unit) Hashtbl.t;
  crashed : (int, unit) Hashtbl.t;
  (* partition id per node; nodes communicate iff their ids are equal.
     Absent means the default partition 0. *)
  partition_of : (int, int) Hashtbl.t;
  stats : stats;
  (* promiscuous wiretap: sees every packet put on the wire (before
     loss or garbling) — for eavesdropping demos and debugging *)
  mutable tap : (src:int -> dst:int -> Bytes.t -> unit) option;
  (* per-link latency overrides, for targeted race scenarios *)
  link_latency : (int * int, float) Hashtbl.t;
  (* schedule hook: lets an adversary (lib/check) override the latency
     of individual packets — consulted before link_latency/config, and
     before jitter is drawn, so a [Some _] answer keeps the PRNG
     stream unperturbed for the packets it does not touch *)
  mutable delay_fn : (src:int -> dst:int -> size:int -> float option) option;
}

let create ?(config = default_config) ?(seed = 1) engine =
  { engine; prng = Horus_util.Prng.create seed; config;
    handlers = Hashtbl.create 64; crashed = Hashtbl.create 8;
    partition_of = Hashtbl.create 8;
    stats = { sent = 0; delivered = 0; dropped = 0; garbled = 0;
              duplicated = 0; oversize = 0; bytes_sent = 0 };
    tap = None;
    link_latency = Hashtbl.create 4;
    delay_fn = None }

let set_tap t f = t.tap <- f

let set_delay_fn t f = t.delay_fn <- f

let set_link_latency t ~src ~dst latency =
  match latency with
  | Some l -> Hashtbl.replace t.link_latency (src, dst) l
  | None -> Hashtbl.remove t.link_latency (src, dst)

let engine t = t.engine

let config t = t.config

let set_config t config = t.config <- config

let stats t = t.stats

(* Export the wire stats into a metrics registry, as monotone [net.*]
   counters mirroring the [stats] record. Called at snapshot time
   (e.g. by [World.metrics_json]) so the registry needs no hook in the
   packet hot path. *)
let export_metrics t m =
  let c name v = Horus_obs.Metrics.(set_counter (counter m name) v) in
  c "net.sent" t.stats.sent;
  c "net.delivered" t.stats.delivered;
  c "net.dropped" t.stats.dropped;
  c "net.garbled" t.stats.garbled;
  c "net.duplicated" t.stats.duplicated;
  c "net.oversize" t.stats.oversize;
  c "net.bytes_sent" t.stats.bytes_sent

let attach t ~node handler =
  if Hashtbl.mem t.handlers node then invalid_arg "Net.attach: node already attached";
  Hashtbl.replace t.handlers node handler

let detach t ~node = Hashtbl.remove t.handlers node

let crash t ~node = Hashtbl.replace t.crashed node ()

let recover t ~node = Hashtbl.remove t.crashed node

let is_crashed t ~node = Hashtbl.mem t.crashed node

let partition_id t node =
  match Hashtbl.find_opt t.partition_of node with
  | Some p -> p
  | None -> 0

(* [partition t groups] places each listed node in the partition of its
   group; unlisted nodes stay in partition 0. *)
let partition t groups =
  Hashtbl.reset t.partition_of;
  List.iteri
    (fun i group -> List.iter (fun node -> Hashtbl.replace t.partition_of node (i + 1)) group)
    groups

let heal t = Hashtbl.reset t.partition_of

let connected t a b = partition_id t a = partition_id t b

let garble_payload t payload =
  let n = Bytes.length payload in
  if n = 0 then payload
  else begin
    let copy = Bytes.copy payload in
    let i = Horus_util.Prng.int t.prng n in
    Bytes.set copy i (Char.chr (Char.code (Bytes.get copy i) lxor (1 + Horus_util.Prng.int t.prng 255)));
    copy
  end

let deliver t ~src ~dst payload =
  (* Re-check at delivery time: the destination may have crashed or been
     partitioned away while the packet was in flight. *)
  if (not (is_crashed t ~node:dst)) && connected t src dst then
    match Hashtbl.find_opt t.handlers dst with
    | Some handler ->
      t.stats.delivered <- t.stats.delivered + 1;
      handler ~src payload
    | None -> t.stats.dropped <- t.stats.dropped + 1
  else t.stats.dropped <- t.stats.dropped + 1

let send t ~src ~dst payload =
  t.stats.sent <- t.stats.sent + 1;
  t.stats.bytes_sent <- t.stats.bytes_sent + Bytes.length payload;
  (match t.tap with Some f -> f ~src ~dst payload | None -> ());
  let c = t.config in
  if Bytes.length payload > c.mtu then begin
    t.stats.oversize <- t.stats.oversize + 1;
    t.stats.dropped <- t.stats.dropped + 1
  end
  else if is_crashed t ~node:src || not (connected t src dst) then
    t.stats.dropped <- t.stats.dropped + 1
  else if Horus_util.Prng.chance t.prng c.drop_prob then
    t.stats.dropped <- t.stats.dropped + 1
  else begin
    let payload =
      if Horus_util.Prng.chance t.prng c.garble_prob then begin
        t.stats.garbled <- t.stats.garbled + 1;
        garble_payload t payload
      end
      else payload
    in
    let once () =
      let override =
        match t.delay_fn with
        | Some f -> f ~src ~dst ~size:(Bytes.length payload)
        | None -> None
      in
      let delay =
        match override with
        | Some d -> d
        | None ->
          let base =
            match Hashtbl.find_opt t.link_latency (src, dst) with
            | Some l -> l
            | None -> c.latency
          in
          if c.jitter > 0.0 then base +. Horus_util.Prng.float t.prng c.jitter else base
      in
      ignore (Engine.schedule t.engine ~delay (fun () -> deliver t ~src ~dst payload))
    in
    once ();
    if Horus_util.Prng.chance t.prng c.duplicate_prob then begin
      t.stats.duplicated <- t.stats.duplicated + 1;
      once ()
    end
  end
