(** Simulated best-effort datagram network (property P1 only).

    Nodes are integer ids. Packets can be delayed, dropped, duplicated,
    garbled and reordered; the node set can be partitioned; nodes can
    crash. All behaviour is deterministic from the seed. *)

type config = {
  latency : float;        (** base one-way latency, seconds *)
  jitter : float;         (** uniform extra latency in [0, jitter) *)
  drop_prob : float;
  duplicate_prob : float;
  garble_prob : float;    (** probability of flipping one payload byte *)
  mtu : int;              (** larger packets are dropped *)
}

val default_config : config

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable garbled : int;
  mutable duplicated : int;
  mutable oversize : int;
  mutable bytes_sent : int;
}

type t

val create : ?config:config -> ?seed:int -> Engine.t -> t

val engine : t -> Engine.t
val config : t -> config
val set_config : t -> config -> unit
val stats : t -> stats

val export_metrics : t -> Horus_obs.Metrics.t -> unit
(** Mirror the wire stats into [net.*] counters of the registry.
    Snapshot-time export: call it just before serializing the
    registry. *)

val attach : t -> node:int -> (src:int -> Bytes.t -> unit) -> unit
(** Register the receive handler for a node. *)

val detach : t -> node:int -> unit

val send : t -> src:int -> dst:int -> Bytes.t -> unit
(** Best-effort unicast; delivery is scheduled on the engine. *)

val crash : t -> node:int -> unit
(** A crashed node neither sends nor receives. *)

val recover : t -> node:int -> unit
val is_crashed : t -> node:int -> bool

val partition : t -> int list list -> unit
(** [partition t groups] isolates each group; unlisted nodes form the
    default partition. Replaces any previous partition. *)

val heal : t -> unit
val connected : t -> int -> int -> bool

val set_tap : t -> (src:int -> dst:int -> Bytes.t -> unit) option -> unit
(** Promiscuous wiretap: sees every packet put on the wire, before
    loss or garbling. For eavesdropping demos and debugging. *)

val set_link_latency : t -> src:int -> dst:int -> float option -> unit
(** Override the one-way latency of a single directed link ([None]
    restores the default). For targeted race scenarios. *)

val set_delay_fn :
  t -> (src:int -> dst:int -> size:int -> float option) option -> unit
(** Per-packet schedule hook for systematic testing (see [lib/check]):
    called for every copy put on the wire; [Some d] overrides that
    packet's one-way latency (bypassing link overrides and jitter —
    the PRNG stream is left untouched for overridden packets), [None]
    falls through to the normal path. *)
