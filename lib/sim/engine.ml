(* Discrete-event simulation engine.

   Time is a float (seconds). Events at equal times fire in scheduling
   order (a monotonic sequence number breaks ties), which makes every
   run deterministic. The whole Horus stack — timers, network delivery,
   endpoint event queues — runs as thunks on this engine. *)

type handle = { mutable cancelled : bool }

type event = {
  time : float;
  scheduled : float;   (* [now] at the moment of scheduling *)
  seq : int;
  thunk : unit -> unit;
  handle : handle;
}

(* Instruments, present when the engine was created over a metrics
   registry. The dispatch-delay histogram is in *simulated* seconds
   (time between scheduling and execution), so it is deterministic in
   the seed like every other simulated metric. *)
type obs = {
  dispatch_delay : Horus_obs.Metrics.histogram;
  events_executed : Horus_obs.Metrics.counter;
  events_cancelled : Horus_obs.Metrics.counter;
}

type t = {
  mutable now : float;
  mutable next_seq : int;
  mutable executed : int;
  queue : event Horus_util.Heap.t;
  obs : obs option;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?metrics () =
  let obs =
    Option.map
      (fun m ->
         { dispatch_delay = Horus_obs.Metrics.histogram m "engine.dispatch_delay_s";
           events_executed = Horus_obs.Metrics.counter m "engine.events_executed";
           events_cancelled = Horus_obs.Metrics.counter m "engine.events_cancelled" })
      metrics
  in
  { now = 0.0; next_seq = 0; executed = 0;
    queue = Horus_util.Heap.create ~compare:compare_event; obs }

let now t = t.now

let executed t = t.executed

let pending t = Horus_util.Heap.length t.queue

let schedule_at t ~time thunk =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  let handle = { cancelled = false } in
  Horus_util.Heap.push t.queue { time; scheduled = t.now; seq = t.next_seq; thunk; handle };
  t.next_seq <- t.next_seq + 1;
  handle

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) thunk

let cancel handle = handle.cancelled <- true

let cancelled handle = handle.cancelled

(* Run one event; false when the queue is empty. *)
let step t =
  match Horus_util.Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.now <- ev.time;
    if ev.handle.cancelled then
      (match t.obs with
       | Some o -> Horus_obs.Metrics.incr o.events_cancelled
       | None -> ())
    else begin
      t.executed <- t.executed + 1;
      (match t.obs with
       | Some o ->
         Horus_obs.Metrics.incr o.events_executed;
         Horus_obs.Metrics.observe o.dispatch_delay (ev.time -. ev.scheduled)
       | None -> ());
      ev.thunk ()
    end;
    true

exception Budget_exhausted of int

(* Run until the queue drains. [max_events] guards against protocol
   bugs that generate work forever (retransmission storms). *)
let run ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  while step t do
    decr budget;
    if !budget <= 0 then raise (Budget_exhausted max_events)
  done

let run_until ?(max_events = 10_000_000) t ~time =
  let budget = ref max_events in
  let continue = ref true in
  while !continue do
    match Horus_util.Heap.peek t.queue with
    | Some ev when ev.time <= time ->
      ignore (step t);
      decr budget;
      if !budget <= 0 then raise (Budget_exhausted max_events)
    | Some _ | None ->
      continue := false
  done;
  if t.now < time then t.now <- time
