(* Discrete-event simulation engine.

   Time is a float (seconds). Events at equal times fire in scheduling
   order (a monotonic sequence number breaks ties), which makes every
   run deterministic. The whole Horus stack — timers, network delivery,
   endpoint event queues — runs as thunks on this engine. *)

type handle = { mutable cancelled : bool }

type event = {
  time : float;
  scheduled : float;   (* [now] at the moment of scheduling *)
  seq : int;
  thunk : unit -> unit;
  handle : handle;
}

(* Instruments, present when the engine was created over a metrics
   registry. The dispatch-delay histogram is in *simulated* seconds
   (time between scheduling and execution), so it is deterministic in
   the seed like every other simulated metric. *)
type obs = {
  dispatch_delay : Horus_obs.Metrics.histogram;
  events_executed : Horus_obs.Metrics.counter;
  events_cancelled : Horus_obs.Metrics.counter;
}

(* Schedule adversary (lib/check's systematic explorer). When a
   chooser is installed, [step] gathers every live event whose time
   falls within [horizon] of the earliest pending event (at most
   [width] of them, and only once simulated time reaches [from]) and
   lets the chooser pick which fires next. This models the real
   nondeterminism of a distributed system — network and timer events
   with nearby timestamps may be observed in any order — while keeping
   each choice sequence perfectly replayable. *)
type candidate = { c_time : float; c_seq : int }

type chooser = {
  ch_horizon : float;
  ch_width : int;
  ch_from : float;
  ch_fn : now:float -> candidate array -> int;
}

type t = {
  mutable now : float;
  mutable next_seq : int;
  mutable executed : int;
  queue : event Horus_util.Heap.t;
  obs : obs option;
  mutable chooser : chooser option;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?metrics () =
  let obs =
    Option.map
      (fun m ->
         { dispatch_delay = Horus_obs.Metrics.histogram m "engine.dispatch_delay_s";
           events_executed = Horus_obs.Metrics.counter m "engine.events_executed";
           events_cancelled = Horus_obs.Metrics.counter m "engine.events_cancelled" })
      metrics
  in
  { now = 0.0; next_seq = 0; executed = 0;
    queue = Horus_util.Heap.create ~compare:compare_event; obs;
    chooser = None }

let set_chooser ?(horizon = 0.002) ?(width = 4) ?(from = 0.0) t fn =
  if horizon < 0.0 then invalid_arg "Engine.set_chooser: negative horizon";
  if width < 1 then invalid_arg "Engine.set_chooser: width < 1";
  t.chooser <- Some { ch_horizon = horizon; ch_width = width; ch_from = from; ch_fn = fn }

let clear_chooser t = t.chooser <- None

let now t = t.now

let executed t = t.executed

let pending t = Horus_util.Heap.length t.queue

(* Firing time of the earliest queued event (cancelled events included —
   an early wake-up is harmless). Real-time drivers (lib/transport's
   Driver) use this to size their select timeout. *)
let next_time t =
  Option.map (fun ev -> ev.time) (Horus_util.Heap.peek t.queue)

let schedule_at t ~time thunk =
  (* Under a chooser, executing a deferred event advances [now] past
     events still in the queue; absolute times computed before the
     reordering may then be marginally in the past. Clamp instead of
     raising — the run stays deterministic either way. *)
  let time = if t.chooser <> None && time < t.now then t.now else time in
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  let handle = { cancelled = false } in
  Horus_util.Heap.push t.queue { time; scheduled = t.now; seq = t.next_seq; thunk; handle };
  t.next_seq <- t.next_seq + 1;
  handle

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) thunk

let cancel handle = handle.cancelled <- true

let cancelled handle = handle.cancelled

let note_cancelled t =
  match t.obs with
  | Some o -> Horus_obs.Metrics.incr o.events_cancelled
  | None -> ()

let execute t ev =
  (* [Float.max]: a chooser may fire a later event first; time never
     runs backwards. Without a chooser [ev.time >= t.now] always. *)
  t.now <- Float.max t.now ev.time;
  t.executed <- t.executed + 1;
  (match t.obs with
   | Some o ->
     Horus_obs.Metrics.incr o.events_executed;
     Horus_obs.Metrics.observe o.dispatch_delay (ev.time -. ev.scheduled)
   | None -> ());
  ev.thunk ()

(* Run one event; false when the queue is empty. *)
let step t =
  match t.chooser with
  | Some ch when
      (match Horus_util.Heap.peek t.queue with
       | Some head -> head.time >= ch.ch_from
       | None -> false) ->
    (* Gather the adversary's candidate window: live events within
       [horizon] of the earliest one, capped at [width]. Cancelled
       events are consumed (and counted) along the way. *)
    let rec collect acc =
      if List.length acc >= ch.ch_width then List.rev acc
      else
        match Horus_util.Heap.pop t.queue with
        | None -> List.rev acc
        | Some ev ->
          if ev.handle.cancelled then begin
            note_cancelled t;
            collect acc
          end
          else
            (match acc with
             | [] -> collect [ ev ]
             | first :: _ ->
               if ev.time <= first.time +. ch.ch_horizon then collect (ev :: acc)
               else begin
                 Horus_util.Heap.push t.queue ev;
                 List.rev acc
               end)
    in
    (match collect [] with
     | [] -> false
     | [ ev ] ->
       execute t ev;
       true
     | evs ->
       let arr = Array.of_list evs in
       let cands = Array.map (fun e -> { c_time = e.time; c_seq = e.seq }) arr in
       let idx = ch.ch_fn ~now:t.now cands in
       let idx = if idx < 0 || idx >= Array.length arr then 0 else idx in
       Array.iteri (fun i e -> if i <> idx then Horus_util.Heap.push t.queue e) arr;
       execute t arr.(idx);
       true)
  | Some _ | None ->
    (match Horus_util.Heap.pop t.queue with
     | None -> false
     | Some ev ->
       t.now <- ev.time;
       if ev.handle.cancelled then note_cancelled t
       else execute t ev;
       true)

exception Budget_exhausted of int

(* Run until the queue drains. [max_events] guards against protocol
   bugs that generate work forever (retransmission storms). *)
let run ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  while step t do
    decr budget;
    if !budget <= 0 then raise (Budget_exhausted max_events)
  done

let run_until ?(max_events = 10_000_000) t ~time =
  let budget = ref max_events in
  let continue = ref true in
  while !continue do
    match Horus_util.Heap.peek t.queue with
    | Some ev when ev.time <= time ->
      ignore (step t);
      decr budget;
      if !budget <= 0 then raise (Budget_exhausted max_events)
    | Some _ | None ->
      continue := false
  done;
  if t.now < time then t.now <- time
